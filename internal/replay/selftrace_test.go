package replay

import (
	"testing"

	"metascope/internal/archive"
	"metascope/internal/obs/flight"
	"metascope/internal/pattern"
	"metascope/internal/trace"
	"metascope/internal/vclock"
)

// flightEv builds one snapshot event with millisecond-scale stamps.
func flightEv(whenMS int64, actor int32, kind flight.Kind, name flight.NameID, a, b int64) flight.Event {
	return flight.Event{When: whenMS * 1e6, Actor: actor, Job: -1, Kind: kind, Name: name, A: a, B: b}
}

// Names table shared by the hand-made snapshots below; ids are 1-based
// positions.
var selftraceNames = []string{"replay-worker", "mailbox-take", "mailbox-put", "collective-gather"}

const (
	nWorker flight.NameID = 1
	nTake   flight.NameID = 2
	nPut    flight.NameID = 3
	nGather flight.NameID = 4
)

// TestBuildFlightTracesRoundTrip feeds a minimal two-actor recording —
// actor 5 puts a message for actor 9, which blocked for it — through
// the exporter and back through the analyzer. The blocked take must
// come out as a matched receive with Late Sender severity.
func TestBuildFlightTracesRoundTrip(t *testing.T) {
	sig := flightSig(0, 7)
	snap := &flight.Snapshot{
		Names: selftraceNames,
		Events: []flight.Event{
			flightEv(0, 5, flight.SpanBegin, nWorker, 0, 0),
			flightEv(0, 9, flight.SpanBegin, nWorker, 0, 0),
			flightEv(1, 9, flight.BlockBegin, nTake, 5, sig),
			flightEv(30, 5, flight.Send, nPut, 9, sig),
			flightEv(31, 9, flight.BlockEnd, nTake, 5, sig),
			flightEv(32, 5, flight.SpanEnd, nWorker, 0, 0),
			flightEv(33, 9, flight.SpanEnd, nWorker, 0, 0),
		},
	}
	traces, err := BuildFlightTraces(snap, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d traces, want 2", len(traces))
	}
	// Actors renumber densely: 5 -> rank 0, 9 -> rank 1.
	if traces[0].Loc.Rank != 0 || traces[1].Loc.Rank != 1 {
		t.Fatalf("ranks not dense: %v, %v", traces[0].Loc, traces[1].Loc)
	}
	if n := traces[0].CountKind(trace.KindSend); n != 1 {
		t.Fatalf("sender trace has %d sends, want 1", n)
	}
	if n := traces[1].CountKind(trace.KindRecv); n != 1 {
		t.Fatalf("receiver trace has %d recvs, want 1", n)
	}

	res, err := Analyze(traces, Config{Scheme: vclock.FlatSingle, Title: "self"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 1 {
		t.Fatalf("self-replay matched %d messages, want 1", res.Messages)
	}
	ls := res.Report.RankMetricTotal(pattern.KeyLateSender, 1)
	if ls <= 0 {
		t.Fatalf("blocked take produced no Late Sender severity (got %g)", ls)
	}
}

// TestBuildFlightTracesBalancePrune drops the message events that lost
// their counterpart to ring overwrites: three puts survived but only
// one take, so exactly one send/recv pair may remain or the
// self-replay would block forever.
func TestBuildFlightTracesBalancePrune(t *testing.T) {
	sig := flightSig(3, 1)
	snap := &flight.Snapshot{
		Names: selftraceNames,
		Events: []flight.Event{
			flightEv(1, 0, flight.Send, nPut, 1, sig),
			flightEv(2, 0, flight.Send, nPut, 1, sig),
			flightEv(3, 0, flight.Send, nPut, 1, sig),
			flightEv(4, 1, flight.BlockBegin, nTake, 0, sig),
			flightEv(5, 1, flight.BlockEnd, nTake, 0, sig),
		},
	}
	traces, err := BuildFlightTraces(snap, -1)
	if err != nil {
		t.Fatal(err)
	}
	if n := traces[0].CountKind(trace.KindSend); n != 1 {
		t.Fatalf("pruned sender trace has %d sends, want 1", n)
	}
	// The demoted puts keep their region spans.
	if n := traces[0].CountKind(trace.KindEnter); n != 4 { // root + 3 puts
		t.Fatalf("sender trace has %d enters, want 4", n)
	}
	if _, err := Analyze(traces, Config{Scheme: vclock.FlatSingle}); err != nil {
		t.Fatalf("self-replay of pruned traces failed: %v", err)
	}
}

// TestBuildFlightTracesChoppedRing survives a window whose edges the
// ring cut off: a BlockEnd with no Begin, and a Gather left open at
// the end. The output must still validate.
func TestBuildFlightTracesChoppedRing(t *testing.T) {
	sig := flightSig(0, 2)
	snap := &flight.Snapshot{
		Names: selftraceNames,
		Events: []flight.Event{
			flightEv(1, 4, flight.BlockEnd, nTake, 11, sig),   // begin fell off
			flightEv(2, 4, flight.Send, nPut, 11, sig),        // peer recorded nothing
			flightEv(3, 4, flight.GatherBegin, nGather, 0, 0), // never closed
		},
	}
	traces, err := BuildFlightTraces(snap, -1)
	if err != nil {
		t.Fatal(err)
	}
	tr := traces[0]
	if n := tr.CountKind(trace.KindRecv); n != 0 {
		t.Fatalf("orphaned BlockEnd produced %d recvs, want 0", n)
	}
	if n := tr.CountKind(trace.KindSend); n != 0 {
		t.Fatalf("send to an unrecorded actor produced %d sends, want 0", n)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("chopped trace does not validate: %v", err)
	}
}

// TestBuildFlightTracesJobFilter keeps only the requested job's
// events.
func TestBuildFlightTracesJobFilter(t *testing.T) {
	ev := flightEv(1, 0, flight.SpanBegin, nWorker, 0, 0)
	ev.Job = 3
	snap := &flight.Snapshot{Names: selftraceNames, Events: []flight.Event{ev}}
	if _, err := BuildFlightTraces(snap, -1); err == nil {
		t.Fatal("no error for a snapshot with no job -1 events")
	}
	traces, err := BuildFlightTraces(snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
}

// TestWriteFlightArchiveMounts writes a recording to disk and mounts
// it back through the standard archive autodetection path.
func TestWriteFlightArchiveMounts(t *testing.T) {
	rec := flight.New()
	rec.Enable(0)
	fn := newFlightNames(rec)
	sig := flightSig(0, 1)
	w0 := rec.Writer(0)
	w1 := rec.Writer(1)
	w0.Emit(flight.SpanBegin, -1, fn.worker, 0, 0)
	w1.Emit(flight.SpanBegin, -1, fn.worker, 0, 0)
	w1.Emit(flight.BlockBegin, -1, fn.take, 0, sig)
	w0.Emit(flight.Send, -1, fn.put, 1, sig)
	w1.Emit(flight.BlockEnd, -1, fn.take, 0, sig)
	w0.Emit(flight.SpanEnd, -1, fn.worker, 0, 0)
	w1.Emit(flight.SpanEnd, -1, fn.worker, 0, 0)

	root := t.TempDir()
	if err := WriteFlightArchive(rec, root); err != nil {
		t.Fatal(err)
	}
	mounts, metahosts, dir, err := archive.MountTree(root, "")
	if err != nil {
		t.Fatal(err)
	}
	if dir != "epik_flight" {
		t.Fatalf("detected archive %q, want epik_flight", dir)
	}
	traces, err := LoadArchive(mounts, metahosts, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("loaded %d traces, want 2", len(traces))
	}
	if traces[0].Loc.MetahostName != "metascope" {
		t.Fatalf("metahost name %q, want metascope", traces[0].Loc.MetahostName)
	}
}
