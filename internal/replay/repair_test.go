package replay

import (
	"math"
	"testing"

	"metascope/internal/pattern"
	"metascope/internal/trace"
	"metascope/internal/vclock"
)

// Timestamp repair (simplified controlled logical clock): violated
// receives are shifted just past their sends, and the shift carries
// forward through the process's remaining events.

func TestRepairRestoresClockCondition(t *testing.T) {
	// Send at 4 but receive recorded at 3.5 (bad clocks): a violation.
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0),
		enter(4, 1), send(4, 1, 7, 100), exit(4.5, 1),
		exit(10, 0),
	})
	t1 := synth(1, 0, []trace.Event{
		enter(0, 0),
		enter(3, 2), recv(3.5, 0, 7, 100), exit(3.6, 2),
		exit(10, 0),
	})
	res, err := Analyze([]*trace.Trace{t0, t1}, Config{Scheme: vclock.FlatSingle, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 1 || res.Repairs != 1 {
		t.Fatalf("violations/repairs = %d/%d, want 1/1", res.Violations, res.Repairs)
	}
	// After repair the receive sits just past the send, so the Late
	// Sender wait is send−recvEnter = 1 (clamped by the stretched
	// receive duration).
	ls := sev(t, res.Report, pattern.KeyLateSender, []string{"main", "MPI_Recv"}, 1)
	if math.Abs(ls-1) > 1e-6 {
		t.Errorf("repaired LS = %g, want 1", ls)
	}
}

func TestRepairShiftCarriesForward(t *testing.T) {
	// Two messages 0→1. The first receive violates by 2; the second is
	// recorded 3 later than the first on both sides, so after the
	// shift it stays consistent and needs NO second repair.
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0),
		enter(4, 1), send(4, 1, 7, 10), exit(4.1, 1),
		enter(7, 1), send(7, 1, 7, 10), exit(7.1, 1),
		exit(10, 0),
	})
	t1 := synth(1, 0, []trace.Event{
		enter(0, 0),
		enter(1.5, 2), recv(2, 0, 7, 10), exit(2.1, 2),
		enter(4.5, 2), recv(5, 0, 7, 10), exit(5.1, 2),
		exit(10, 0),
	})
	res, err := Analyze([]*trace.Trace{t0, t1}, Config{Scheme: vclock.FlatSingle, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Repairs != 1 {
		t.Fatalf("repairs = %d, want 1 (shift must amortize the second message)", res.Repairs)
	}
	// Without repair both receives violate.
	res2, err := Analyze([]*trace.Trace{t0, t1}, Config{Scheme: vclock.FlatSingle})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Violations != 2 || res2.Repairs != 0 {
		t.Fatalf("unrepaired violations/repairs = %d/%d, want 2/0", res2.Violations, res2.Repairs)
	}
}

func TestRepairOffByDefault(t *testing.T) {
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0),
		enter(4, 1), send(4, 1, 7, 100), exit(4.5, 1),
		exit(10, 0),
	})
	t1 := synth(1, 0, []trace.Event{
		enter(0, 0),
		enter(3, 2), recv(3.5, 0, 7, 100), exit(3.5, 2),
		exit(10, 0),
	})
	res := analyze(t, []*trace.Trace{t0, t1})
	if res.Repairs != 0 {
		t.Fatalf("repairs happened without Repair flag")
	}
}

func TestBytesMetrics(t *testing.T) {
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0),
		enter(1, 1), send(1, 1, 7, 1000), exit(1.5, 1),
		enter(2, 1), send(2, 1, 8, 500), exit(2.5, 1),
		exit(10, 0),
	})
	t1 := synth(1, 0, []trace.Event{
		enter(0, 0),
		enter(1, 2), recv(2, 0, 7, 1000), exit(2, 2),
		enter(3, 2), recv(3.5, 0, 8, 500), exit(3.5, 2),
		exit(10, 0),
	})
	res := analyze(t, []*trace.Trace{t0, t1})
	sent := sev(t, res.Report, pattern.KeyBytesSent, []string{"main", "MPI_Send"}, 0)
	if sent != 1500 {
		t.Errorf("bytes sent = %g, want 1500", sent)
	}
	recvd := sev(t, res.Report, pattern.KeyBytesRecv, []string{"main", "MPI_Recv"}, 1)
	if recvd != 1500 {
		t.Errorf("bytes received = %g, want 1500", recvd)
	}
	// Neither metric leaks onto the wrong side.
	if v := sev(t, res.Report, pattern.KeyBytesRecv, []string{"main", "MPI_Send"}, 0); v != 0 {
		t.Errorf("sender shows received bytes %g", v)
	}
}

func TestNxNCompletionMetric(t *testing.T) {
	// Allreduce: last entrant at 6, both leave at 7 → each spends 1 in
	// completion; the early one additionally waits 5 (Wait at NxN).
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0),
		enter(1, 4), collExit(7, trace.CollAllreduce, -1), exit(7, 4),
		exit(10, 0),
	})
	t1 := synth(1, 0, []trace.Event{
		enter(0, 0),
		enter(6, 4), collExit(7, trace.CollAllreduce, -1), exit(7, 4),
		exit(10, 0),
	})
	res := analyze(t, []*trace.Trace{t0, t1})
	for rank := 0; rank < 2; rank++ {
		comp := sev(t, res.Report, pattern.KeyNxNComp, []string{"main", "MPI_Allreduce"}, rank)
		if math.Abs(comp-1) > 1e-9 {
			t.Errorf("rank %d NxN completion = %g, want 1", rank, comp)
		}
	}
}
