package replay

import (
	"math"
	"strings"
	"testing"

	"metascope/internal/pattern"
	"metascope/internal/trace"
)

// The fine-grained grid classification of §6 (future work realized):
// grid pattern severities split into per-metahost-pair child metrics.

func TestGridPairClassificationP2P(t *testing.T) {
	// Three metahosts A(0), B(1), C(2). Rank 2 (on C) receives one late
	// message from A (wait 3) and one from B (wait 2).
	def := trace.CommDef{ID: 0, Ranks: []int32{0, 1, 2}}
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0),
		enter(4, 1), send(4, 2, 1, 10), exit(4.2, 1),
		exit(20, 0),
	}, def)
	t1 := synth(1, 1, []trace.Event{
		enter(0, 0),
		enter(9, 1), send(9, 2, 2, 10), exit(9.2, 1),
		exit(20, 0),
	}, def)
	t2 := synth(2, 2, []trace.Event{
		enter(0, 0),
		enter(1, 2), recv(4.5, 0, 1, 10), exit(4.5, 2),
		enter(7, 2), recv(9.5, 1, 2, 10), exit(9.5, 2),
		exit(20, 0),
	}, def)
	res := analyze(t, []*trace.Trace{t0, t1, t2})
	rep := res.Report

	// Total grid LS = 3 + 2 = 5.
	gls := rep.MetricIndex(pattern.KeyGridLS)
	if got := rep.MetricTotal(gls); math.Abs(got-5) > 1e-9 {
		t.Fatalf("grid LS total = %g, want 5", got)
	}
	// Pair children exist and split the total: A↔C = 3, B↔C = 2.
	ac := rep.MetricIndex(pattern.KeyGridLS + ".pair.0-2")
	bc := rep.MetricIndex(pattern.KeyGridLS + ".pair.1-2")
	if ac < 0 || bc < 0 {
		t.Fatalf("pair metrics missing; metrics: %v", rep.SortedMetricKeys())
	}
	if got := rep.MetricTotal(ac); math.Abs(got-3) > 1e-9 {
		t.Errorf("A<->C = %g, want 3", got)
	}
	if got := rep.MetricTotal(bc); math.Abs(got-2) > 1e-9 {
		t.Errorf("B<->C = %g, want 2", got)
	}
	// Pair metrics are children of the grid metric.
	if rep.Metrics[ac].Parent != gls {
		t.Errorf("pair metric not a child of Grid Late Sender")
	}
	// Display names carry the metahost names.
	if !strings.Contains(rep.Metrics[ac].Name, "A") || !strings.Contains(rep.Metrics[ac].Name, "C") {
		t.Errorf("pair metric name %q", rep.Metrics[ac].Name)
	}
	// The report remains structurally valid and serializable.
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridPairClassificationBarrier(t *testing.T) {
	// Barrier across A and B: the A process waits for the late B
	// process → pair A↔B under Grid Wait at Barrier.
	def := trace.CommDef{ID: 0, Ranks: []int32{0, 1}}
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0),
		enter(2, 3), collExit(6.5, trace.CollBarrier, -1), exit(6.5, 3),
		exit(10, 0),
	}, def)
	t1 := synth(1, 1, []trace.Event{
		enter(0, 0),
		enter(6, 3), collExit(6.5, trace.CollBarrier, -1), exit(6.5, 3),
		exit(10, 0),
	}, def)
	res := analyze(t, []*trace.Trace{t0, t1})
	rep := res.Report
	pairIdx := rep.MetricIndex(pattern.KeyGridWB + ".pair.0-1")
	if pairIdx < 0 {
		t.Fatalf("barrier pair metric missing")
	}
	if got := rep.MetricTotal(pairIdx); math.Abs(got-4) > 1e-9 {
		t.Errorf("A<->B barrier pair = %g, want 4", got)
	}
	// Inclusive grid WB unchanged by the classification.
	gwb := rep.MetricIndex(pattern.KeyGridWB)
	if got := rep.MetricTotal(gwb); math.Abs(got-4) > 1e-9 {
		t.Errorf("grid WB inclusive = %g, want 4", got)
	}
}

func TestNoPairMetricsWithoutGridInstances(t *testing.T) {
	// Single metahost: no grid instances, no pair metrics.
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0),
		enter(4, 1), send(4, 1, 7, 100), exit(4.5, 1),
		exit(10, 0),
	})
	t1 := synth(1, 0, []trace.Event{
		enter(0, 0),
		enter(1, 2), recv(5, 0, 7, 100), exit(5, 2),
		exit(10, 0),
	})
	res := analyze(t, []*trace.Trace{t0, t1})
	for _, m := range res.Report.Metrics {
		if strings.Contains(m.Key, ".pair.") {
			t.Fatalf("pair metric %q on a single-metahost run", m.Key)
		}
	}
}
