package replay

import (
	"runtime"
	"strings"
	"testing"
	"time"
	"unsafe"

	"metascope/internal/archive"
	"metascope/internal/trace"
)

// unsafeStringData exposes a string's backing pointer so tests can
// check two equal strings are one interned instance.
func unsafeStringData(s string) *byte { return unsafe.StringData(s) }

// loadFixture builds a single-FS archive with n well-formed rank
// traces and returns the mounts and directory.
func loadFixture(t *testing.T, n int) (*archive.Mounts, archive.FS, string) {
	t.Helper()
	fs := archive.NewMemFS("load")
	mounts := archive.NewMounts()
	mounts.Mount(0, fs)
	dir := "epik_parallel"
	if err := fs.Mkdir(dir); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		writeRank(t, fs, dir, r)
	}
	return mounts, fs, dir
}

func writeRank(t *testing.T, fs archive.FS, dir string, rank int) {
	t.Helper()
	tr := synth(rank, 0, []trace.Event{enter(0, 0), exit(1, 0)})
	tr.Loc.Rank = rank
	w, err := fs.Create(archive.TraceFile(dir, rank))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Encode(w); err != nil {
		t.Fatal(err)
	}
	w.Close()
}

func corruptRank(t *testing.T, fs archive.FS, dir string, rank int) {
	t.Helper()
	// Valid magic and version, then a header that declares more events
	// than the remaining bytes can hold — the decode fails mid-flight,
	// after other workers already started.
	w, err := fs.Create(archive.TraceFile(dir, rank))
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("MSCP\x01garbage"))
	w.Close()
}

func TestLoadArchiveParallelDecodesAllRanks(t *testing.T) {
	const n = 16
	mounts, _, dir := loadFixture(t, n)
	traces, err := LoadArchive(mounts, []int{0}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != n {
		t.Fatalf("loaded %d traces, want %d", len(traces), n)
	}
	for r, tr := range traces {
		if tr.Loc.Rank != r {
			t.Fatalf("slot %d holds rank %d", r, tr.Loc.Rank)
		}
	}
}

func TestLoadArchiveNonDenseRankRange(t *testing.T) {
	fs := archive.NewMemFS("sparse")
	mounts := archive.NewMounts()
	mounts.Mount(0, fs)
	dir := "epik_sparse"
	fs.Mkdir(dir)
	writeRank(t, fs, dir, 0)
	writeRank(t, fs, dir, 5) // gap: ranks 1..4 missing
	_, err := LoadArchive(mounts, []int{0}, dir)
	if err == nil || !strings.Contains(err.Error(), "dense range") {
		t.Fatalf("non-dense rank range not detected: %v", err)
	}
}

func TestLoadArchiveDuplicateRankAcrossFS(t *testing.T) {
	mounts, _, dir := loadFixture(t, 3)
	other := archive.NewMemFS("dup")
	mounts.Mount(1, other)
	other.Mkdir(dir)
	writeRank(t, other, dir, 1)
	_, err := LoadArchive(mounts, []int{0, 1}, dir)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate rank not detected: %v", err)
	}
}

// TestLoadArchiveDecodeFailureFirstErrorWins corrupts one rank of a
// wide archive and checks that (a) the load fails with that rank's
// decode error on every attempt — first error wins deterministically,
// independent of which workers were in flight — and (b) the decode
// pool leaks no goroutines.
func TestLoadArchiveDecodeFailureFirstErrorWins(t *testing.T) {
	const n = 16
	mounts, fs, dir := loadFixture(t, n)
	corruptRank(t, fs, dir, 7)

	before := runtime.NumGoroutine()
	var first string
	for i := 0; i < 25; i++ {
		_, err := LoadArchive(mounts, []int{0}, dir)
		if err == nil {
			t.Fatalf("attempt %d: corrupt archive loaded", i)
		}
		if !strings.Contains(err.Error(), "trace.7.mscp") {
			t.Fatalf("attempt %d: error names wrong file: %v", i, err)
		}
		if first == "" {
			first = err.Error()
		} else if err.Error() != first {
			t.Fatalf("attempt %d: error changed:\n  first: %s\n  now:   %s", i, first, err.Error())
		}
	}

	// Workers must have drained; allow the runtime a moment to retire.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestLoadArchiveTwoFailuresLowestWins corrupts two ranks; the
// reported error must always belong to the lexically-first trace file,
// not to whichever worker failed first on the clock.
func TestLoadArchiveTwoFailuresLowestWins(t *testing.T) {
	const n = 12
	mounts, fs, dir := loadFixture(t, n)
	corruptRank(t, fs, dir, 3)
	corruptRank(t, fs, dir, 9)
	for i := 0; i < 25; i++ {
		_, err := LoadArchive(mounts, []int{0}, dir)
		if err == nil {
			t.Fatalf("attempt %d: corrupt archive loaded", i)
		}
		if !strings.Contains(err.Error(), "trace.3.mscp") {
			t.Fatalf("attempt %d: want the error of trace.3.mscp, got: %v", i, err)
		}
	}
}

// TestLoadArchiveWrongRankInFile covers the file-content/rank-name
// mismatch path under the parallel loader.
func TestLoadArchiveWrongRankInFile(t *testing.T) {
	mounts, fs, dir := loadFixture(t, 4)
	// Overwrite trace.2.mscp with a trace claiming rank 3.
	tr := synth(3, 0, []trace.Event{enter(0, 0), exit(1, 0)})
	w, err := fs.Create(archive.TraceFile(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Encode(w); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, lerr := LoadArchive(mounts, []int{0}, dir)
	if lerr == nil || !strings.Contains(lerr.Error(), "contains trace of rank 3") {
		t.Fatalf("rank mismatch not detected: %v", lerr)
	}
}

// TestLoadArchiveInternsSharedNames verifies that the loader's shared
// interner collapses the region and metahost names replicated in every
// rank's trace file to single string instances.
func TestLoadArchiveInternsSharedNames(t *testing.T) {
	const n = 8
	mounts, _, dir := loadFixture(t, n)
	traces, err := LoadArchive(mounts, []int{0}, dir)
	if err != nil {
		t.Fatal(err)
	}
	// All ranks replicate the same region table; interning must make
	// the name strings share backing storage (pointer-equal headers).
	for r := 1; r < n; r++ {
		for i := range traces[r].Regions {
			a, b := traces[0].Regions[i].Name, traces[r].Regions[i].Name
			if a != b {
				t.Fatalf("rank %d region %d name %q != %q", r, i, b, a)
			}
			if len(a) > 0 && unsafeStringData(a) != unsafeStringData(b) {
				t.Errorf("rank %d region %d name %q not interned", r, i, b)
			}
		}
	}
}
