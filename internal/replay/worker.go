package replay

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"metascope/internal/obs"
	"metascope/internal/obs/flight"
	"metascope/internal/pattern"
	"metascope/internal/phase"
	"metascope/internal/profile"
	"metascope/internal/trace"
	"metascope/internal/vclock"
)

// sendRecord is the per-message datum a sender's analysis process
// forwards to the receiver's analysis process during replay — a few
// dozen bytes, independent of the message's payload size.
type sendRecord struct {
	comm        int32
	srcWorld    int32
	tag         int32
	bytes       int64
	srcMetahost int
	sendEvent   float64 // corrected Send event time
	sendEnter   float64 // corrected enter of the enclosing MPI call
	sendExit    float64 // corrected exit of the enclosing MPI call
	srcCP       int     // sender-local call-path id of the MPI call
}

// mailbox is the unbounded, order-preserving channel delivering send
// records to one *receiver's* analysis process. put never blocks (the
// original application's standard-mode sends were buffered), so replay
// cannot deadlock if the traced application completed. An aborted
// analysis (cancelled context) wakes every blocked receiver instead:
// abort is set under the mailbox lock and broadcast, and take returns
// ok=false so the worker can unwind.
//
// Records are sharded per receiver and, inside a receiver's mailbox,
// keyed by exact matching signature (comm, src, tag). Matching is
// therefore O(1) amortized — the receiver pops the head of its
// signature's FIFO instead of scanning a shared slice — and a put only
// touches the destination rank's mailbox, so workers replaying
// disjoint receivers never contend.
//
// The FIFOs are value cells inside the signature map, with the first
// pending record stored inline and a spill slice used only when a
// signature bursts. A signature that alternates put/take — the common
// varying-pairs pattern, where thousands of (sender, receiver) pairs
// each exchange a handful of messages — therefore costs no per-pair
// heap objects at all: drained cells are deleted, and the map reuses
// their buckets.
type mailbox struct {
	mu    sync.Mutex
	cond  sync.Cond // signaled by put and abort; the receiver is the only waiter
	q     map[sig]cell
	abort bool // set once when the analysis is cancelled
}

// sig is the exact matching signature within one receiver's mailbox.
type sig struct {
	comm int32
	src  int32 // sender world rank
	tag  int32
}

// cell is the FIFO of pending send records of one signature. Records
// from one sender arrive in that sender's event order, so the n-th
// take of a signature yields the n-th send — the same pairing the
// message-passing layer produced, because its transport is FIFO per
// process pair.
type cell struct {
	count int        // live records: first plus rest[head:]
	first sendRecord // the oldest pending record, inline
	rest  []sendRecord
	head  int
}

func newMailbox() *mailbox {
	mb := &mailbox{q: make(map[sig]cell, 8)}
	mb.cond.L = &mb.mu
	return mb
}

func (mb *mailbox) put(r sendRecord) {
	s := sig{comm: r.comm, src: r.srcWorld, tag: r.tag}
	mb.mu.Lock()
	c := mb.q[s]
	if c.count == 0 {
		c.first = r
	} else {
		c.rest = append(c.rest, r)
	}
	c.count++
	mb.q[s] = c
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// setAbort wakes a receiver blocked in take; subsequent takes on an
// empty signature return immediately with ok=false.
func (mb *mailbox) setAbort() {
	mb.mu.Lock()
	mb.abort = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take blocks until a record with the exact signature (comm, source
// world rank, tag) is available and removes the oldest such record;
// ok=false means the analysis was aborted while (or before) waiting.
// Once matched, the record is gone from the mailbox: a drained
// signature's cell is deleted outright, and a shifted spill slot is
// zeroed, so the backing storage holds no reference to matched records
// (the old scan-and-splice left dead records alive in the slice's
// spare capacity).
func (mb *mailbox) take(comm, srcWorld, tag int32) (sendRecord, bool) {
	s := sig{comm: comm, src: srcWorld, tag: tag}
	mb.mu.Lock()
	c := mb.q[s]
	for c.count == 0 {
		if mb.abort {
			mb.mu.Unlock()
			return sendRecord{}, false
		}
		mb.cond.Wait()
		c = mb.q[s]
	}
	r := c.first
	c.count--
	if c.count == 0 {
		delete(mb.q, s)
	} else {
		c.first = c.rest[c.head]
		c.rest[c.head] = sendRecord{}
		c.head++
		if c.head == len(c.rest) {
			c.rest = c.rest[:0]
			c.head = 0
		}
		mb.q[s] = c
	}
	mb.mu.Unlock()
	return r, true
}

// collGather coordinates the members of one collective instance: every
// participant deposits its corrected enter/exit and blocks until the
// last one arrives, after which each computes its own wait states from
// the complete vectors.
type collGather struct {
	enters  []float64
	exits   []float64
	mhs     []int
	arrived int
	done    chan struct{}
}

// collDomain shards the collective-gather state by communicator: each
// communicator carries its own lock and its own map of in-flight
// instances (keyed by per-communicator sequence number), so collectives
// on disjoint communicators never serialize on a shared mutex. The
// domain map itself is built before the workers start and is read-only
// during replay.
type collDomain struct {
	mu      sync.Mutex
	gathers map[int]*collGather
}

// remoteContribution attributes a severity detected on one analysis
// process to a call path of another process (Late Receiver is detected
// by the receiver but suffered by the sender).
type remoteContribution struct {
	rank   int
	cp     int
	pat    pattern.ID
	val    float64
	mhA    int // metahost pair for grid instances
	mhB    int
	isGrid bool
}

// pairKey identifies a grid-pattern instance's metahost combination
// (canonically ordered), realizing the fine-grained classification §6
// names as desirable future work.
type pairKey struct {
	pat  pattern.ID
	a, b int
}

func makePairKey(pat pattern.ID, a, b int) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{pat: pat, a: a, b: b}
}

// cpAcc accumulates raw severities for one call path of one rank.
type cpAcc struct {
	excl      float64
	visits    float64
	bytesSent float64
	bytesRecv float64
	waits     [pattern.NumPatterns]float64
	pairs     map[pairKey]float64 // grid waits by metahost pair
}

func (acc *cpAcc) addPair(pat pattern.ID, a, b int, v float64) {
	if acc.pairs == nil {
		acc.pairs = make(map[pairKey]float64, 2)
	}
	acc.pairs[makePairKey(pat, a, b)] += v
}

// cpInfo is one node of a rank-local call-path tree.
type cpInfo struct {
	parent int
	region trace.RegionID
	name   string
	kind   trace.RegionKind
	sig    uint64 // phase.SigOf(name), hashed once per call path
}

type cpKey struct {
	parent int
	region trace.RegionID
}

// recvInfo is kept per receive for the deterministic wrong-order
// post-pass and the clock-condition count.
type recvInfo struct {
	cp        int
	sendEvent float64
	recvEnter float64
	lsWait    float64
	grid      bool
	srcMH     int // sender's metahost, for the pair classification
}

// rankResult is everything one analysis process produces.
// Wire-size estimates for the analyzer's own communication: a
// forwarded send record and one collective-gather contribution. Used
// to quantify §4's replay-traffic argument.
const (
	sendRecordWire = 64
	collGatherWire = 24
)

type rankResult struct {
	rank           int
	paths          []cpInfo
	byKey          map[cpKey]int
	acc            []cpAcc
	recvLog        []recvInfo
	violations     int
	repairs        int
	messages       int
	colls          int
	replayBytes    int64
	replayExternal int64
	commMatrix     map[[2]int]CommVolume // outgoing traffic by (myMH, dstMH)
	// profLog is this analysis process's slice of the time-resolved
	// severity profile, recorded as raw samples in sweep order. The
	// profile's interval axis (origin, bucket width) is only known once
	// every trace is complete — post-mortem that is before the replay
	// starts, in a live session only at finalize — so workers defer the
	// samples and result() replays each rank's log into a per-rank
	// accumulator and merges them in rank order, reproducible
	// bit-for-bit in both modes.
	profLog []profSample
	// opLog records one entry per completed non-user region instance
	// (corrected enter/exit plus the region-name signature) — the raw
	// material of automatic phase detection. Like profLog it is written
	// only by this rank's own sweep, so appends need no lock.
	opLog []phase.Op
	// postLog holds the post-pass severity deposits of this rank
	// (late-sender family reclassifications), appended by postPassRank
	// alongside the profile accumulator. The per-phase fold replays
	// profLog then postLog rank-major, purely sequentially, which keeps
	// the phase artifact byte-identical whether the post-pass itself ran
	// sequentially or on one goroutine per rank.
	postLog []profSample
	err     error
}

// profSample is one deferred profile deposit: Add(key, start, dur,
// val), with dur==0 standing for AddPoint.
type profSample struct {
	key   profile.Key
	start float64
	dur   float64
	val   float64
}

func (rr *rankResult) addProf(k profile.Key, start, dur, val float64) {
	rr.profLog = append(rr.profLog, profSample{key: k, start: start, dur: dur, val: val})
}

func (rr *rankResult) cpID(parent int, region trace.RegionID, name string, kind trace.RegionKind) int {
	k := cpKey{parent, region}
	if id, ok := rr.byKey[k]; ok {
		return id
	}
	id := len(rr.paths)
	rr.byKey[k] = id
	rr.paths = append(rr.paths, cpInfo{
		parent: parent, region: region, name: name, kind: kind,
		sig: phase.SigOf(name),
	})
	rr.acc = append(rr.acc, cpAcc{})
	return id
}

// analyzer owns one parallel analysis run.
type analyzer struct {
	traces []*trace.Trace
	corr   []vclock.LinearMap
	comms  map[int32][]int32
	cfg    Config

	// logs hold the per-rank event streams the workers sweep. Post-
	// mortem they are closed over the loaded traces before run();
	// a live session swaps in open logs that fill as chunks land.
	logs []*rankLog
	// sink, when non-nil, receives every scored severity as a windowed
	// delta for the live stream (nil post-mortem: one branch per score).
	sink *streamSink
	// progress, when non-nil, tracks each worker's corrected sweep time
	// (float64 bits; +Inf once the rank is done) — the live engine's
	// window-close frontier.
	progress []atomic.Uint64

	mailboxes []*mailbox
	colls     map[int32]*collDomain

	remoteMu sync.Mutex
	remote   []remoteContribution

	results []*rankResult
	corrs   []vclock.Correction

	// metrics is the pre-registered replay metric set; worker progress
	// gauges are updated live while the replay runs.
	metrics *replayMetrics
	// fl is the flight recorder replay workers write their event-level
	// timeline into (blocked takes, puts, gather waits); flJob is the
	// job id the events carry and fn the pre-registered event names.
	// When the recorder is disabled every worker's writer is nil and
	// each instrumentation point costs one branch.
	fl    *flight.Recorder
	flJob int32
	fn    flightNames

	// Cancellation: abortWith trips once, waking every worker blocked in
	// a mailbox take or a collective gather; replayRank also polls the
	// flag periodically so a long event sweep unwinds promptly. cause
	// (the context's error) is published before the atomic flag and the
	// channel close, so any worker that observes the abort also sees it.
	abortCh   chan struct{}
	abortOnce sync.Once
	aborted   atomic.Bool
	cause     error
}

func newAnalyzer(traces []*trace.Trace, corr []vclock.Correction, comms map[int32][]int32, cfg Config) *analyzer {
	a := &analyzer{
		traces:    traces,
		corr:      make([]vclock.LinearMap, len(traces)),
		comms:     comms,
		cfg:       cfg,
		mailboxes: make([]*mailbox, len(traces)),
		colls:     make(map[int32]*collDomain, len(comms)),
		results:   make([]*rankResult, len(traces)),
		corrs:     corr,
		abortCh:   make(chan struct{}),
	}
	a.fl = obs.OrDefault(cfg.Obs).Flight
	a.flJob = cfg.FlightJob
	if a.flJob <= 0 {
		a.flJob = -1
	}
	if a.fl.Enabled() {
		a.fn = newFlightNames(a.fl)
	}
	for _, c := range corr {
		a.corr[c.Rank] = c.Map
	}
	a.logs = make([]*rankLog, len(traces))
	for i, t := range traces {
		a.logs[i] = newClosedRankLog(t.Events)
	}
	for i := range a.mailboxes {
		a.mailboxes[i] = newMailbox()
	}
	for id := range comms {
		a.colls[id] = &collDomain{gathers: make(map[int]*collGather)}
	}
	return a
}

// run executes the replay with one goroutine per rank — the parallel
// analysis of §4, which on the metacomputer itself would run on the
// same processors as the application. Worker progress is visible live
// through the workers-active and ranks-done gauges (scrape them via
// -pprof's /metrics endpoint during a long analysis), and every worker
// goroutine carries pprof labels (rank, phase), so a CPU or goroutine
// profile taken through -pprof attributes samples to the analysis
// process that burned them.
func (a *analyzer) run() {
	if a.metrics == nil {
		a.metrics = newReplayMetrics(obs.OrDefault(a.cfg.Obs))
	}
	a.metrics.ranksDone.Set(0)
	var wg sync.WaitGroup
	for rank := range a.traces {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			labels := pprof.Labels("rank", strconv.Itoa(rank), "phase", "replay")
			pprof.Do(context.Background(), labels, func(context.Context) {
				a.metrics.workersActive.Add(1)
				a.results[rank] = a.replayRank(rank)
				a.metrics.workersActive.Add(-1)
				a.metrics.ranksDone.Add(1)
			})
		}(rank)
	}
	wg.Wait()
}

// abortWith cancels the replay: every mailbox waiter and collective
// gather unblocks, and the periodic sweep checks trip. The first cause
// wins; later calls are no-ops.
func (a *analyzer) abortWith(cause error) {
	a.abortOnce.Do(func() {
		a.cause = cause
		a.aborted.Store(true)
		close(a.abortCh)
		for _, mb := range a.mailboxes {
			mb.setAbort()
		}
		for _, lg := range a.logs {
			lg.abort()
		}
	})
}

// cancelErr is the per-rank error a worker reports when it unwound
// because of an abort; it wraps the context's error so callers can
// errors.Is against context.Canceled / DeadlineExceeded.
func (a *analyzer) cancelErr(rank int) error {
	return fmt.Errorf("replay: rank %d: analysis aborted: %w", rank, a.cause)
}

// gatherColl coordinates one collective instance and returns the
// completed gather, or nil if the analysis was aborted while waiting
// for the remaining members. Only the instance's own communicator
// domain is locked, so collectives on other communicators proceed
// concurrently.
func (a *analyzer) gatherColl(comm int32, seq, size, commRank int, enter, exit float64, mh int) *collGather {
	d := a.colls[comm]
	d.mu.Lock()
	g, ok := d.gathers[seq]
	if !ok {
		// One backing array for both time vectors halves the gather's
		// allocation count; the instance is created by whichever member
		// replays its CollExit first.
		times := make([]float64, 2*size)
		g = &collGather{
			enters: times[:size:size],
			exits:  times[size:],
			mhs:    make([]int, size),
			done:   make(chan struct{}),
		}
		d.gathers[seq] = g
	}
	g.enters[commRank] = enter
	g.exits[commRank] = exit
	g.mhs[commRank] = mh
	g.arrived++
	if g.arrived == size {
		delete(d.gathers, seq)
		close(g.done)
	}
	d.mu.Unlock()
	select {
	case <-g.done:
		return g
	case <-a.abortCh:
		return nil
	}
}

// addRemote records a severity for another rank's call path.
func (a *analyzer) addRemote(rc remoteContribution) {
	a.remoteMu.Lock()
	a.remote = append(a.remote, rc)
	a.remoteMu.Unlock()
}

// stackEntry tracks an open region during the forward sweep.
type stackEntry struct {
	cp        int
	enter     float64
	childTime float64
}

// replayRank performs one analysis process's forward sweep.
func (a *analyzer) replayRank(rank int) *rankResult {
	t := a.traces[rank]
	corr := a.corr[rank]
	myMH := t.Loc.Metahost
	rr := &rankResult{
		rank: rank, byKey: make(map[cpKey]int),
		commMatrix: make(map[[2]int]CommVolume),
	}
	regions := make(map[trace.RegionID]*trace.Region, len(t.Regions))
	for i := range t.Regions {
		regions[t.Regions[i].ID] = &t.Regions[i]
	}
	collSeq := make(map[int32]int)

	// The sweep reads its events through a cursor so the same code
	// serves both modes: post-mortem the log is closed up front and
	// at() never blocks; live it blocks until the next chunk lands.
	sc := newSweepCursor(a.logs[rank])

	// One receive-log entry is appended per Recv event; when the whole
	// log is already present as one slice (post-mortem), sizing it
	// exactly up front avoids the doubling reallocations that dominated
	// the analyzer's allocation profile. Lazy and live logs skip this —
	// counting would force the entire log resident.
	if nrecv, ok := a.logs[rank].recvCountIfFlat(); ok {
		rr.recvLog = make([]recvInfo, 0, nrecv)
	}

	// Publish sweep progress for the live frontier: the last corrected
	// event time, and +Inf once this rank's sweep is over (done or
	// failed — either way it will never hold a window open again).
	if a.progress != nil {
		defer a.progress[rank].Store(math.Float64bits(math.Inf(1)))
	}

	// Flight recording: one shard per rank (nil while the recorder is
	// disabled — every emit below then costs a single branch). The
	// whole sweep is one span; takes, puts, and gathers nest inside.
	fw := a.fl.Writer(int32(rank))
	if fw != nil {
		fw.Emit(flight.SpanBegin, a.flJob, a.fn.worker, 0, 0)
		defer fw.Emit(flight.SpanEnd, a.flJob, a.fn.worker, 0, 0)
	}

	// delta is the forward timestamp-repair shift (controlled logical
	// clock): non-decreasing, applied to every event from the moment a
	// violation was repaired.
	delta := 0.0
	mu := a.cfg.RepairMu
	if mu <= 0 {
		mu = 1e-9
	}

	var stack []stackEntry
	for i := 0; ; i++ {
		if !sc.at(i) {
			if sc.aborted {
				rr.err = a.cancelErr(rank)
				return rr
			}
			break // log closed: the sweep is complete
		}
		// Periodic abort poll: a cancelled analysis must not finish a
		// multi-million-event sweep first. Blocking points (mailbox
		// takes, collective gathers, cursor waits) unblock through
		// their own paths.
		if i&1023 == 0 && a.aborted.Load() {
			rr.err = a.cancelErr(rank)
			return rr
		}
		// Blocks entirely behind the frontier will never be read again;
		// releasing them is what bounds a lazy or live sweep's memory.
		sc.release(i)
		ev := sc.ev(i)
		if ev == nil {
			// A lazy block failed to decode or validate. The fault is
			// this rank's alone, but peers blocked on our sends must
			// unwind too.
			rr.err = sc.err
			a.abortWith(sc.err)
			return rr
		}
		ct := corr.Apply(ev.Time) + delta
		if a.progress != nil {
			a.progress[rank].Store(math.Float64bits(ct))
		}
		switch ev.Kind {
		case trace.KindEnter:
			reg := regions[ev.Region]
			parent := -1
			if len(stack) > 0 {
				parent = stack[len(stack)-1].cp
			}
			cp := rr.cpID(parent, ev.Region, reg.Name, reg.Kind)
			stack = append(stack, stackEntry{cp: cp, enter: ct})

		case trace.KindExit:
			if len(stack) == 0 {
				rr.err = fmt.Errorf("replay: rank %d: exit without enter at event %d", rank, i)
				return rr
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			dur := ct - top.enter
			rr.acc[top.cp].excl += dur - top.childTime
			rr.acc[top.cp].visits++
			if len(stack) > 0 {
				stack[len(stack)-1].childTime += dur
			}
			// Phase detection keys on communication structure: one op per
			// completed MPI region instance, user regions excluded (they
			// span whole iterations and would fuse every silence gap).
			if info := &rr.paths[top.cp]; info.kind != trace.RegionUser {
				rr.opLog = append(rr.opLog, phase.Op{Enter: top.enter, Exit: ct, Sig: info.sig})
			}

		case trace.KindSend:
			if len(stack) == 0 {
				rr.err = fmt.Errorf("replay: rank %d: send outside region at event %d", rank, i)
				return rr
			}
			top := stack[len(stack)-1]
			exitT, ok := regionExitTime(sc, i, corr, delta)
			if !ok {
				switch {
				case sc.err != nil:
					rr.err = sc.err
					a.abortWith(sc.err)
				case sc.aborted:
					rr.err = a.cancelErr(rank)
				default:
					rr.err = fmt.Errorf("replay: rank %d: unterminated MPI region at event %d", rank, i)
				}
				return rr
			}
			def := a.comms[ev.Comm]
			if int(ev.Peer) >= len(def) {
				rr.err = fmt.Errorf("replay: rank %d: send to rank %d of %d-member communicator %d",
					rank, ev.Peer, len(def), ev.Comm)
				return rr
			}
			rr.acc[top.cp].bytesSent += float64(ev.Bytes)
			rr.replayBytes += sendRecordWire
			dst := int(def[ev.Peer])
			dstMH := a.traces[dst].Loc.Metahost
			if dstMH != myMH {
				rr.replayExternal += sendRecordWire
			}
			cell := rr.commMatrix[[2]int{myMH, dstMH}]
			cell.Messages++
			cell.Bytes += ev.Bytes
			rr.commMatrix[[2]int{myMH, dstMH}] = cell
			volKey := profile.KeyBytesIntra
			if dstMH != myMH {
				volKey = profile.KeyBytesWide
			}
			rr.addProf(profile.Key{Metric: volKey, Metahost: myMH, Rank: rank}, ct, 0, float64(ev.Bytes))
			if a.sink != nil {
				a.sink.add(deltaKey{Metric: volKey, Metahost: myMH}, ct, 0, float64(ev.Bytes))
			}
			if fw != nil {
				fw.Emit(flight.Send, a.flJob, a.fn.put, int64(dst), flightSig(ev.Comm, ev.Tag))
			}
			a.mailboxes[dst].put(sendRecord{
				comm:        ev.Comm,
				srcWorld:    int32(rank),
				tag:         ev.Tag,
				bytes:       ev.Bytes,
				srcMetahost: myMH,
				sendEvent:   ct,
				sendEnter:   top.enter,
				sendExit:    exitT,
				srcCP:       top.cp,
			})

		case trace.KindRecv:
			if len(stack) == 0 {
				rr.err = fmt.Errorf("replay: rank %d: recv outside region at event %d", rank, i)
				return rr
			}
			top := stack[len(stack)-1]
			def := a.comms[ev.Comm]
			if int(ev.Peer) >= len(def) {
				rr.err = fmt.Errorf("replay: rank %d: recv from rank %d of %d-member communicator %d",
					rank, ev.Peer, len(def), ev.Comm)
				return rr
			}
			srcWorld := def[ev.Peer]
			if fw != nil {
				fw.Emit(flight.BlockBegin, a.flJob, a.fn.take, int64(srcWorld), flightSig(ev.Comm, ev.Tag))
			}
			rec, ok := a.mailboxes[rank].take(ev.Comm, srcWorld, ev.Tag)
			if fw != nil {
				fw.Emit(flight.BlockEnd, a.flJob, a.fn.take, int64(srcWorld), flightSig(ev.Comm, ev.Tag))
			}
			if !ok {
				rr.err = a.cancelErr(rank)
				return rr
			}
			rr.messages++
			rr.acc[top.cp].bytesRecv += float64(ev.Bytes)
			if ct < rec.sendEvent {
				rr.violations++
				if a.cfg.Repair {
					// Advance this process's logical clock just past
					// the send; the shift persists for all later
					// events, restoring causal order.
					delta += rec.sendEvent + mu - ct
					ct = corr.Apply(ev.Time) + delta
					rr.repairs++
				}
			}
			grid := rec.srcMetahost != myMH
			ls := pattern.LateSenderWait(rec.sendEnter, top.enter, ct)
			if a.sink != nil && ls > 0 {
				// Streamed at family granularity: the post-pass may
				// reclassify the instance as wrong-order or grid, both
				// children of Late Sender in the metric tree, so the
				// family's inclusive cube total matches the stream.
				a.sink.add(deltaKey{Metric: pattern.LateSender.MetricKey(), Metahost: myMH},
					top.enter, ls, ls)
			}
			rr.recvLog = append(rr.recvLog, recvInfo{
				cp:        top.cp,
				sendEvent: rec.sendEvent,
				recvEnter: top.enter,
				lsWait:    ls,
				grid:      grid,
				srcMH:     rec.srcMetahost,
			})
			if rec.bytes > int64(a.cfg.EagerLimit) {
				lr := pattern.LateReceiverWait(top.enter, rec.sendEnter, rec.sendExit)
				if lr > 0 {
					pat := pattern.LateReceiver
					if grid {
						pat = pattern.GridLateReceiver
					}
					a.addRemote(remoteContribution{
						rank: int(rec.srcWorld), cp: rec.srcCP, pat: pat, val: lr,
						mhA: rec.srcMetahost, mhB: myMH, isGrid: grid,
					})
					// The sender blocked from its enter until the wait
					// elapsed; the detecting (receiving) process records
					// the interval into its own sample log, keyed to
					// the suffering sender.
					rr.addProf(profile.Key{Metric: pat.MetricKey(), Metahost: rec.srcMetahost, Rank: int(rec.srcWorld)},
						rec.sendEnter, lr, lr)
					if a.sink != nil {
						a.sink.add(deltaKey{Metric: pattern.LateReceiver.MetricKey(), Metahost: rec.srcMetahost},
							rec.sendEnter, lr, lr)
					}
				}
			}

		case trace.KindCollExit:
			if len(stack) == 0 {
				rr.err = fmt.Errorf("replay: rank %d: collexit outside region at event %d", rank, i)
				return rr
			}
			top := stack[len(stack)-1]
			def := a.comms[ev.Comm]
			commRank := -1
			for idx, wr := range def {
				if int(wr) == rank {
					commRank = idx
					break
				}
			}
			if commRank < 0 {
				rr.err = fmt.Errorf("replay: rank %d: collexit on foreign communicator %d", rank, ev.Comm)
				return rr
			}
			rr.acc[top.cp].bytesSent += float64(ev.Bytes)
			seq := collSeq[ev.Comm]
			collSeq[ev.Comm] = seq + 1
			if fw != nil {
				fw.Emit(flight.GatherBegin, a.flJob, a.fn.gather, int64(ev.Comm), int64(seq))
			}
			g := a.gatherColl(ev.Comm, seq, len(def), commRank, top.enter, ct, myMH)
			if fw != nil {
				fw.Emit(flight.GatherEnd, a.flJob, a.fn.gather, int64(ev.Comm), int64(seq))
			}
			if g == nil {
				rr.err = a.cancelErr(rank)
				return rr
			}
			rr.colls++
			rr.replayBytes += collGatherWire
			for _, wr := range def {
				if a.traces[wr].Loc.Metahost != myMH {
					// The dissemination of gathered enters crosses the
					// external network once per remote member.
					rr.replayExternal += collGatherWire
					break
				}
			}
			a.scoreCollective(rr, top.cp, ev, g, commRank, ct)
		}
	}
	if len(stack) != 0 {
		rr.err = fmt.Errorf("replay: rank %d: %d unclosed regions at end of trace", rank, len(stack))
	}
	return rr
}

// regionExitTime finds the corrected exit time of the region enclosing
// the event at index i (the first Exit that returns to the current
// nesting depth). Under timestamp repair the current shift is used;
// shifts applied later inside the region are not foreseen, a deliberate
// simplification of the full controlled logical clock. The lookahead
// runs through the cursor: in a live session it blocks until the
// enclosing MPI call's Exit has been ingested (MPI calls are leaf
// regions spanning a handful of events, so the wait is one chunk at
// most). ok=false means the log ended first — closed without the Exit
// (an unterminated region) or aborted; the caller distinguishes via
// sc.aborted.
func regionExitTime(sc *sweepCursor, i int, corr vclock.LinearMap, delta float64) (float64, bool) {
	depth := 0
	for j := i + 1; sc.at(j); j++ {
		e := sc.ev(j)
		if e == nil {
			return 0, false // decode failed; the cause is in sc.err
		}
		switch e.Kind {
		case trace.KindEnter:
			depth++
		case trace.KindExit:
			if depth == 0 {
				return corr.Apply(e.Time) + delta, true
			}
			depth--
		}
	}
	return 0, false
}

// scoreCollective computes this participant's wait states for one
// completed collective instance. Grid instances are additionally
// classified by the metahost pair (this process's metahost, the
// metahost of the process that caused the wait) — the fine-grained
// classification §6 proposes.
func (a *analyzer) scoreCollective(rr *rankResult, cp int, ev *trace.Event, g *collGather, commRank int, myDone float64) {
	myEnter := g.enters[commRank]
	myMH := g.mhs[commRank]
	maxEnter, minOther := myEnter, 0.0
	maxMH, minOtherMH := myMH, 0
	haveOther := false
	spans := false
	for i, e := range g.enters {
		if e > maxEnter {
			maxEnter = e
			maxMH = g.mhs[i]
		}
		if g.mhs[i] != g.mhs[0] {
			spans = true
		}
		if int32(i) != ev.Root {
			if !haveOther || e < minOther {
				minOther = e
				minOtherMH = g.mhs[i]
				haveOther = true
			}
		}
	}
	add := func(pat pattern.ID, v float64, causeMH int) {
		if v <= 0 {
			return
		}
		if a.sink != nil {
			// Streamed under the base pattern: the grid variant is its
			// child in the metric tree, so the family total matches.
			a.sink.add(deltaKey{Metric: pat.MetricKey(), Metahost: myMH}, myEnter, v, v)
		}
		if spans {
			pat = pat.Gridded()
			rr.acc[cp].addPair(pat, myMH, causeMH, v)
		}
		rr.acc[cp].waits[pat] += v
		// Waiting starts when this process enters the operation and
		// lasts until the cause arrives.
		rr.addProf(profile.Key{Metric: pat.MetricKey(), Metahost: myMH, Rank: rr.rank}, myEnter, v, v)
	}
	// Completion waits sit at the *end* of the operation: from the last
	// participant's enter to this process's exit.
	addCompletion := func(pat pattern.ID, v float64) {
		if v <= 0 {
			return
		}
		rr.acc[cp].waits[pat] += v
		rr.addProf(profile.Key{Metric: pat.MetricKey(), Metahost: myMH, Rank: rr.rank}, myDone-v, v, v)
		if a.sink != nil {
			a.sink.add(deltaKey{Metric: pat.MetricKey(), Metahost: myMH}, myDone-v, v, v)
		}
	}
	switch {
	case ev.Coll == trace.CollBarrier:
		add(pattern.WaitBarrier, pattern.WaitAtBarrierWait(maxEnter, myEnter, myDone), maxMH)
		// Barrier Completion has no grid specialization; add directly.
		addCompletion(pattern.BarrierCompletion, pattern.BarrierCompletionWait(maxEnter, myEnter, myDone))
	case ev.Coll.IsNxN():
		add(pattern.WaitNxN, pattern.WaitAtNxNWait(maxEnter, myEnter, myDone), maxMH)
		addCompletion(pattern.NxNCompletion, pattern.NxNCompletionWait(maxEnter, myEnter, myDone))
	case ev.Coll.IsNToOne():
		if int32(commRank) == ev.Root && haveOther {
			add(pattern.EarlyReduce, pattern.EarlyReduceWait(minOther, myEnter, myDone), minOtherMH)
		}
	case ev.Coll.IsOneToN():
		if int32(commRank) != ev.Root {
			rootEnter := g.enters[ev.Root]
			add(pattern.LateBroadcast, pattern.LateBroadcastWait(rootEnter, myEnter, myDone), g.mhs[ev.Root])
		}
	}
}
