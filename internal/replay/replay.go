// Package replay implements SCALASCA-style parallel trace analysis for
// metacomputing experiments (§3 "Trace analysis", §4 "Parallel trace
// analysis").
//
// Instead of merging local trace files into one global file — which
// would copy large amounts of trace data across (possibly wide-area)
// networks and requires a shared file system — the analyzer assigns
// one analysis process per application process. Each analysis process
// reads only its local trace and re-enacts the application's
// communication: for every recorded message the sender's analysis
// process forwards a small record of its send events to the receiver's
// analysis process, which combines it with its own receive events to
// detect wait states; collective operations exchange their enter/exit
// times among the members of the recorded communicator. The data
// transferred per process is a small constant per event, far less than
// the trace itself.
//
// The analyzer also verifies the clock condition — a receive must not
// appear to happen before its matching send — under the selected
// time-stamp synchronization scheme, reproducing the measurement of
// Table 2.
package replay

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"metascope/internal/archive"
	"metascope/internal/cube"
	"metascope/internal/obs"
	"metascope/internal/phase"
	"metascope/internal/profile"
	"metascope/internal/trace"
	"metascope/internal/vclock"
)

// Config selects how an archive is analyzed.
type Config struct {
	// Scheme is the time-stamp synchronization scheme applied before
	// pattern search (Table 2 compares all three).
	Scheme vclock.Scheme
	// EagerLimit must match the measured run's message-passing layer;
	// messages above it used a rendezvous protocol and are eligible
	// for Late Receiver waits. Zero selects the mmpi default (64 KiB).
	EagerLimit int
	// Title labels the resulting report.
	Title string
	// Repair enables forward timestamp repair (a simplified controlled
	// logical clock, the standard remedy when residual clock-condition
	// violations survive synchronization): whenever a receive would
	// precede its matching send, the receiving process's clock is
	// advanced just past the send time and the shift is carried
	// forward through all its later events, restoring the happened-
	// before order at the cost of locally stretched intervals.
	// Violations are still counted (they equal the number of repairs).
	Repair bool
	// RepairMu is the minimal message latency enforced by a repair
	// (the µ of the controlled logical clock). Zero selects 1 ns.
	RepairMu float64
	// Obs selects the observability recorder the analysis reports its
	// own runtime behavior into (phase spans, replay-traffic
	// histograms, progress gauges, and — when its flight recorder is
	// enabled — event-granular worker timelines); nil selects
	// obs.Default.
	Obs *obs.Recorder
	// FlightJob attributes this analysis's flight events to a service
	// job serial (internal/serve sets it so GET /v1/jobs/{id}/trace can
	// filter one job out of a shared recorder). Zero or negative means
	// "no job": events carry job id -1.
	FlightJob int32
	// ProfileBuckets is the fixed bucket count of the time-resolved
	// severity profile (0 selects profile.DefaultBuckets).
	ProfileBuckets int
	// ProfileWidth is the profile's bucket width in corrected seconds;
	// 0 derives it from the run span so the whole run fits without
	// bucket folding.
	ProfileWidth float64
	// SequentialPostPass forces the wrong-order post-pass to run as
	// one sequential sweep over the ranks instead of per-rank in
	// parallel. The two produce byte-identical artifacts (the
	// determinism tests assert it); the sequential path exists as that
	// test's reference and as a fallback while debugging.
	SequentialPostPass bool
}

// Result is the outcome of one analysis.
type Result struct {
	Report *cube.Report
	// Violations is the number of clock-condition violations — matched
	// message pairs whose corrected receive time precedes the
	// corrected send time.
	Violations int
	// Messages and Collectives count the replayed operations.
	Messages    int
	Collectives int
	// Repairs is the number of timestamp repairs applied (0 unless
	// Config.Repair was set).
	Repairs int
	// ReplayBytes estimates the analysis-time communication volume per
	// rank: the event records forwarded to other analysis processes
	// plus collective-gather contributions. §4 argues this is far
	// smaller than shipping the trace files themselves; compare with
	// TraceSizes.
	ReplayBytes []int64
	// ReplayExternalBytes is the subset of ReplayBytes that crosses
	// metahost boundaries — the expensive wide-area traffic. Merging-
	// based analysis would instead move entire trace files between
	// metahosts (TraceSizes of every rank outside the analysis site).
	ReplayExternalBytes []int64
	// CommMatrix aggregates the application's point-to-point traffic
	// by (source metahost, destination metahost): the internal-versus-
	// external communication split §4's multi-device discussion is
	// about. Keys are metahost id pairs; MetahostNames resolves them.
	CommMatrix map[[2]int]CommVolume
	// MetahostNames maps metahost ids to their human-readable names.
	MetahostNames map[int]string
	// Corrections holds the per-rank time correction maps that were
	// applied (local time → master time).
	Corrections []vclock.Correction
	// Profile is the time-resolved wait-state profile: severity time
	// series per (pattern, metahost, rank) plus intra- vs wide-area
	// message-volume series, on a common interval axis. Also attached
	// to Report.Profile so HTML rendering can show the heatmap.
	Profile *profile.Profile
	// Phases is the automatically detected iteration structure with
	// wait-state severities folded per (phase, family, metahost) — the
	// phase-resolved counterpart of Profile, compared across archives
	// by mtdiff -phases.
	Phases *phase.Profile
}

// LoadArchive reads every local trace file of an experiment from the
// per-metahost file systems. Each file system is visited once even if
// several metahosts share it. The result is indexed by rank and
// complete: a missing or duplicate rank is an error. Ingestion metrics
// go to obs.Default; use LoadArchiveObs to direct them elsewhere.
func LoadArchive(mounts *archive.Mounts, metahosts []int, dir string) ([]*trace.Trace, error) {
	return LoadArchiveCtx(context.Background(), mounts, metahosts, dir, nil)
}

// loadItem is one trace file scheduled for decoding.
type loadItem struct {
	fs   archive.FS
	name string
	rank int
}

// LoadArchiveObs is LoadArchive reporting ingestion telemetry into rec
// (nil selects obs.Default): traces decoded, bytes read, and pool
// width as metrics, and the load wall time as the "ingest" phase span
// (a wall-time gauge would break the metric-snapshot determinism the
// pipeline guarantees).
//
// Loading is a two-phase fast path: every distinct file system is
// listed exactly once and the rank set is validated up front (dense,
// no duplicates), then a bounded worker pool decodes all trace files
// concurrently. Each file is read into a single size-hinted buffer and
// decoded in place; region and metahost names are interned across the
// pool, so an N-rank archive holds one copy of each repeated string.
// The first decode error cancels the remaining work: items after the
// failed one are skipped, items before it still decode, so the
// reported error is the lexically-first failure regardless of worker
// scheduling. Assembly is rank-ordered and deterministic.
func LoadArchiveObs(mounts *archive.Mounts, metahosts []int, dir string, rec *obs.Recorder) ([]*trace.Trace, error) {
	return LoadArchiveCtx(context.Background(), mounts, metahosts, dir, rec)
}

// LoadArchiveCtx is LoadArchiveObs honoring ctx: the decode pool stops
// picking up new trace files once the context is cancelled and the
// load returns the context's error (a decode failure that already won
// the first-error race still takes precedence, keeping the reported
// error deterministic).
func LoadArchiveCtx(ctx context.Context, mounts *archive.Mounts, metahosts []int, dir string, rec *obs.Recorder) ([]*trace.Trace, error) {
	out, _, err := loadArchiveCtx(ctx, mounts, metahosts, dir, rec, false)
	return out, err
}

// LazyArchive is an archive loaded header-only: every v2 trace file's
// byte image is kept whole and its events decode block by block during
// the analysis sweep, directly out of the backing slice. V1 ranks
// (mixed archives are legal) fall back to full materialization. A
// LazyArchive is reusable across sequential analyses but not
// concurrent ones — the block readers are stateful.
type LazyArchive struct {
	// Traces holds every rank's decoded header (location, sync block,
	// regions, communicators). For a v2 rank Events is nil; the events
	// live in the backing image until the sweep reaches them.
	Traces []*trace.Trace

	readers []*trace.BlockReader // per rank; nil = v1, fully decoded
}

// LoadArchiveLazy reads an experiment's trace files but defers v2
// event decoding to the analysis sweep: each file is one read into one
// buffer, and only the header is parsed up front. Combined with
// AnalyzeLazy this both makes loading I/O-bound (the per-event decode
// cost moves into the parallel sweep) and bounds analysis memory —
// swept blocks are released, so an archive larger than RAM streams
// through.
func LoadArchiveLazy(mounts *archive.Mounts, metahosts []int, dir string) (*LazyArchive, error) {
	return LoadArchiveLazyCtx(context.Background(), mounts, metahosts, dir, nil)
}

// LoadArchiveLazyCtx is LoadArchiveLazy honoring ctx and reporting
// ingestion telemetry into rec (nil selects obs.Default).
func LoadArchiveLazyCtx(ctx context.Context, mounts *archive.Mounts, metahosts []int, dir string, rec *obs.Recorder) (*LazyArchive, error) {
	out, readers, err := loadArchiveCtx(ctx, mounts, metahosts, dir, rec, true)
	if err != nil {
		return nil, err
	}
	return &LazyArchive{Traces: out, readers: readers}, nil
}

func loadArchiveCtx(ctx context.Context, mounts *archive.Mounts, metahosts []int, dir string, rec *obs.Recorder, lazy bool) ([]*trace.Trace, []*trace.BlockReader, error) {
	rec = obs.OrDefault(rec)
	m := newIngestMetrics(rec)
	span := rec.Phases.Start("ingest")
	defer span.End()
	start := time.Now()

	// Phase 1: list once per distinct file system and validate the rank
	// set before any decoding work is spent.
	seen := make(map[archive.FS]bool)
	ranks := make(map[int]bool)
	var items []loadItem
	for _, mh := range metahosts {
		fs := mounts.For(mh)
		if seen[fs] {
			continue
		}
		seen[fs] = true
		names, err := fs.List(dir)
		if err != nil {
			return nil, nil, fmt.Errorf("replay: listing archive %q: %w", dir, err)
		}
		for _, name := range names {
			rank, ok := traceRank(name)
			if !ok {
				continue
			}
			if ranks[rank] {
				return nil, nil, fmt.Errorf("replay: duplicate trace for rank %d", rank)
			}
			ranks[rank] = true
			items = append(items, loadItem{fs: fs, name: name, rank: rank})
		}
	}
	if len(items) == 0 {
		return nil, nil, fmt.Errorf("replay: archive %q contains no trace files", dir)
	}
	for rank := range ranks {
		// No duplicates and every rank inside 0..n-1 imply density.
		if rank < 0 || rank >= len(items) {
			return nil, nil, fmt.Errorf("replay: rank %d outside dense range 0..%d (missing trace)",
				rank, len(items)-1)
		}
	}

	// Phase 2: decode all ranks on a bounded pool. At least two workers
	// keep decode and file I/O overlapped even on one processor.
	width := runtime.GOMAXPROCS(0)
	if width < 2 {
		width = 2
	}
	if width > len(items) {
		width = len(items)
	}
	m.poolWidth.Set(float64(width))

	var (
		out       = make([]*trace.Trace, len(items))
		readers   []*trace.BlockReader
		intern    = trace.NewInterner()
		errs      = make([]error, len(items))
		next      atomic.Int64
		minErr    atomic.Int64 // lowest item index that failed; len(items) = none
		bytesRead atomic.Int64
		decoded   atomic.Int64
		wg        sync.WaitGroup
	)
	if lazy {
		readers = make([]*trace.BlockReader, len(items))
	}
	minErr.Store(int64(len(items)))
	decodeOne := func(i int) error {
		it := items[i]
		data, err := archive.ReadFile(it.fs, dir+"/"+it.name)
		if err != nil {
			return fmt.Errorf("replay: opening %s: %w", it.name, err)
		}
		bytesRead.Add(int64(len(data)))
		var t *trace.Trace
		if f, ferr := trace.FormatOf(data); lazy && ferr == nil && f == trace.FormatV2 {
			// Lazy fast path: parse the header, keep the image. The
			// events stay encoded until the sweep wants them.
			r, err := trace.NewBlockReader(data, intern)
			if err != nil {
				return fmt.Errorf("replay: decoding %s: %w", it.name, err)
			}
			readers[it.rank] = r
			t = r.Trace()
		} else {
			t, err = trace.DecodeBytesInterned(data, intern)
			if err != nil {
				return fmt.Errorf("replay: decoding %s: %w", it.name, err)
			}
		}
		if t.Loc.Rank != it.rank {
			return fmt.Errorf("replay: %s contains trace of rank %d", it.name, t.Loc.Rank)
		}
		out[it.rank] = t
		decoded.Add(1)
		return nil
	}
	var ctxCancelled atomic.Bool
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				if ctx.Err() != nil {
					ctxCancelled.Store(true)
					return
				}
				// First-error cancellation: skip items after the lowest
				// failure seen so far; items before it still decode so
				// the winning error does not depend on scheduling.
				if int64(i) > minErr.Load() {
					continue
				}
				if err := decodeOne(i); err != nil {
					errs[i] = err
					for {
						cur := minErr.Load()
						if int64(i) >= cur || minErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	m.traces.Add(float64(decoded.Load()))
	m.bytes.Add(float64(bytesRead.Load()))
	if idx := minErr.Load(); idx < int64(len(items)) {
		return nil, nil, errs[idx]
	}
	if ctxCancelled.Load() {
		return nil, nil, fmt.Errorf("replay: archive load aborted: %w", context.Cause(ctx))
	}
	rec.Log.Debug("archive loaded", "dir", dir, "traces", len(items),
		"bytes", bytesRead.Load(), "pool_width", width, "lazy", lazy,
		"seconds", fmt.Sprintf("%.3f", time.Since(start).Seconds()))
	return out, readers, nil
}

// ingestMetrics pre-registers the archive-ingestion metric families so
// a -metrics-out snapshot carries load-phase cost next to replay-phase
// cost even for an idle or failed load.
type ingestMetrics struct {
	traces, bytes *obs.Series
	poolWidth     *obs.Series
}

func newIngestMetrics(rec *obs.Recorder) *ingestMetrics {
	r := rec.Reg
	return &ingestMetrics{
		traces: r.Counter("metascope_ingest_traces_total",
			"trace files decoded during archive loads").With(),
		bytes: r.Counter("metascope_ingest_bytes_total",
			"trace bytes read during archive loads").With(),
		poolWidth: r.Gauge("metascope_ingest_pool_width",
			"decode worker pool width of the last archive load").With(),
	}
}

// traceRank parses "trace.<rank>.mscp" names.
func traceRank(name string) (int, bool) {
	if !strings.HasPrefix(name, "trace.") || !strings.HasSuffix(name, ".mscp") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "trace."), ".mscp")
	r, err := strconv.Atoi(mid)
	if err != nil || r < 0 {
		return 0, false
	}
	return r, true
}

// BuildCorrections derives the per-rank time correction maps for a
// scheme from the measurements stored in the traces.
func BuildCorrections(traces []*trace.Trace, scheme vclock.Scheme) ([]vclock.Correction, error) {
	switch scheme {
	case vclock.FlatSingle, vclock.FlatInterp:
		start := make([]vclock.Measurement, len(traces))
		end := make([]vclock.Measurement, len(traces))
		for r, t := range traces {
			start[r] = t.Sync.FlatStart
			end[r] = t.Sync.FlatEnd
		}
		return vclock.BuildFlat(scheme, start, end)
	case vclock.Hierarchical:
		inputs := make([]vclock.HierarchicalInput, len(traces))
		for r, t := range traces {
			inputs[r] = vclock.HierarchicalInput{
				Rank:            r,
				SlaveStart:      t.Sync.LocalStart,
				SlaveEnd:        t.Sync.LocalEnd,
				MasterStart:     t.Sync.MasterStart,
				MasterEnd:       t.Sync.MasterEnd,
				SharedNodeClock: t.Sync.SharedNodeClock,
			}
		}
		return vclock.BuildHierarchical(inputs), nil
	default:
		return nil, fmt.Errorf("replay: unknown synchronization scheme %v", scheme)
	}
}

// mergeComms combines the communicator definitions of all traces,
// verifying consistency across ranks.
func mergeComms(traces []*trace.Trace) (map[int32][]int32, error) {
	out := make(map[int32][]int32)
	for _, t := range traces {
		for _, cd := range t.Comms {
			if have, ok := out[cd.ID]; ok {
				if len(have) != len(cd.Ranks) {
					return nil, fmt.Errorf("replay: communicator %d has inconsistent sizes across traces", cd.ID)
				}
				for i := range have {
					if have[i] != cd.Ranks[i] {
						return nil, fmt.Errorf("replay: communicator %d has inconsistent membership across traces", cd.ID)
					}
				}
				continue
			}
			out[cd.ID] = cd.Ranks
		}
	}
	return out, nil
}

// checkCommCoverage verifies that every communicator member has a
// trace. The dense-range check of the archive loader cannot notice a
// missing tail rank (the job simply looks smaller), but the world
// communicator recorded in every surviving trace still names the lost
// ranks — replaying without them would silently drop their side of
// every message and produce a wrong cube rather than an error.
func checkCommCoverage(comms map[int32][]int32, n int) error {
	ids := make([]int32, 0, len(comms))
	for id := range comms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, r := range comms[id] {
			if int(r) < 0 || int(r) >= n {
				return fmt.Errorf("replay: communicator %d references rank %d but the archive holds traces for ranks 0..%d (incomplete archive)",
					id, r, n-1)
			}
		}
	}
	return nil
}

// Analyze runs the parallel replay over a complete set of local traces
// and produces the analysis report. Its own runtime behavior — the
// sync, replay, and pattern-search phase durations, replayed events
// per second, per-rank replay traffic (total and the external-link
// subset), and clock-violation/repair counts — is reported into
// cfg.Obs (or obs.Default).
func Analyze(traces []*trace.Trace, cfg Config) (*Result, error) {
	return AnalyzeContext(context.Background(), traces, cfg)
}

// AnalyzeContext is Analyze honoring ctx: cancellation is checked
// between the sync, replay, and pattern-search phases, and inside the
// replay it wakes workers blocked on message matching or collective
// gathers and trips the periodic sweep poll, so even an analysis of a
// huge archive stops promptly. The returned error wraps the context's
// error (errors.Is-compatible with context.Canceled and
// context.DeadlineExceeded).
func AnalyzeContext(ctx context.Context, traces []*trace.Trace, cfg Config) (*Result, error) {
	return analyzeCtx(ctx, traces, nil, cfg)
}

// AnalyzeLazy analyzes a lazily loaded archive: v2 ranks decode their
// event blocks on demand during the sweep and release them behind it,
// so peak analysis memory is bounded by the sweep window rather than
// the archive size. The produced report, profile, and counters are
// byte-identical to Analyze over the fully materialized traces — lazy
// block validation applies the same checks at the same events.
func AnalyzeLazy(ar *LazyArchive, cfg Config) (*Result, error) {
	return AnalyzeLazyContext(context.Background(), ar, cfg)
}

// AnalyzeLazyContext is AnalyzeLazy honoring ctx, with AnalyzeContext's
// cancellation behavior.
func AnalyzeLazyContext(ctx context.Context, ar *LazyArchive, cfg Config) (*Result, error) {
	return analyzeCtx(ctx, ar.Traces, ar.readers, cfg)
}

func analyzeCtx(ctx context.Context, traces []*trace.Trace, readers []*trace.BlockReader, cfg Config) (*Result, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("replay: no traces")
	}
	for _, t := range traces {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.EagerLimit <= 0 {
		cfg.EagerLimit = 64 << 10
	}
	if cfg.Title == "" {
		cfg.Title = fmt.Sprintf("experiment (%d processes, %v)", len(traces), cfg.Scheme)
	}
	rec := obs.OrDefault(cfg.Obs)
	m := newReplayMetrics(rec)

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("replay: analysis aborted before synchronization: %w", err)
	}
	syncSpan := rec.Phases.Start("sync")
	corr, err := BuildCorrections(traces, cfg.Scheme)
	syncSpan.End()
	if err != nil {
		return nil, err
	}
	vclock.ObserveCorrections(rec, cfg.Scheme, corr)

	comms, err := mergeComms(traces)
	if err != nil {
		return nil, err
	}
	if err := checkCommCoverage(comms, len(traces)); err != nil {
		return nil, err
	}
	a := newAnalyzer(traces, corr, comms, cfg)
	a.metrics = m
	for i, r := range readers {
		if r == nil {
			continue // v1 rank: fully materialized, flat log already set
		}
		lg, err := newLazyRankLog(r)
		if err != nil {
			return nil, err
		}
		a.logs[i] = lg
	}

	events := 0
	for i, t := range traces {
		if i < len(readers) && readers[i] != nil {
			events += readers[i].Total()
		} else {
			events += len(t.Events)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("replay: analysis aborted before replay: %w", err)
	}

	// The watcher translates a context cancellation into the analyzer's
	// abort (waking blocked workers); it exits as soon as the replay
	// phase finishes so no goroutine outlives the analysis.
	watchDone := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				a.abortWith(ctx.Err())
			case <-watchDone:
			}
		}()
	}
	replaySpan := rec.Phases.Start("replay")
	a.run()
	replayDur := replaySpan.End()
	close(watchDone)

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("replay: analysis aborted before pattern search: %w", err)
	}
	patternSpan := rec.Phases.Start("pattern-search")
	res, rerr := a.result()
	patternSpan.End()
	if rerr != nil {
		return nil, rerr
	}

	m.events.Add(float64(events))
	if s := replayDur.Seconds(); s > 0 {
		m.eventsPerSec.Set(float64(events) / s)
	}
	m.messages.Add(float64(res.Messages))
	m.collectives.Add(float64(res.Collectives))
	m.violations.Add(float64(res.Violations))
	m.repairs.Add(float64(res.Repairs))
	for i := range res.ReplayBytes {
		m.rankBytes.Observe(float64(res.ReplayBytes[i]))
		m.rankExternal.Observe(float64(res.ReplayExternalBytes[i]))
	}
	rec.Log.Debug("replay analysis complete",
		"processes", len(traces), "events", events, "messages", res.Messages,
		"collectives", res.Collectives, "violations", res.Violations,
		"repairs", res.Repairs, "replay_seconds", replayDur.Seconds())
	return res, nil
}

// profileConfig derives the time-resolved profile's interval axis
// from the corrected run span: origin at the earliest corrected event,
// bucket width covering the span with ~6% headroom so neither the last
// event nor moderate timestamp repairs force a bucket fold. The span
// is read from the rank logs' time bounds — not the traces' event
// slices, which lazy and live analyses never materialize — so the axis
// depends only on the events and corrections, and two analyses of the
// same archive profile onto identical intervals regardless of mode.
func profileConfig(logs []*rankLog, corr []vclock.LinearMap, cfg Config) profile.Config {
	pc := profile.Config{Buckets: cfg.ProfileBuckets, Width: cfg.ProfileWidth}
	if pc.Buckets <= 0 {
		pc.Buckets = profile.DefaultBuckets
	}
	first := math.Inf(1)
	last := math.Inf(-1)
	for r, lg := range logs {
		lo, hi, ok := lg.bounds()
		if !ok {
			continue
		}
		if v := corr[r].Apply(lo); v < first {
			first = v
		}
		if v := corr[r].Apply(hi); v > last {
			last = v
		}
	}
	if math.IsInf(first, 1) {
		return pc
	}
	pc.Origin = first
	if pc.Width <= 0 {
		if span := last - first; span > 0 {
			pc.Width = span * 1.0625 / float64(pc.Buckets)
		}
	}
	return pc
}

// replayMetrics pre-registers every replay metric family, so a
// snapshot taken after analysis always contains the complete set —
// including zero-valued repair and violation counters.
type replayMetrics struct {
	events, messages, collectives, violations, repairs *obs.Series
	eventsPerSec, workersActive, ranksDone             *obs.Series
	rankBytes, rankExternal                            *obs.Series
}

func newReplayMetrics(rec *obs.Recorder) *replayMetrics {
	r := rec.Reg
	return &replayMetrics{
		events: r.Counter("metascope_replay_events_total",
			"trace events swept during replay analysis").With(),
		messages: r.Counter("metascope_replay_messages_total",
			"point-to-point messages matched during replay").With(),
		collectives: r.Counter("metascope_replay_collectives_total",
			"collective instances replayed").With(),
		violations: r.Counter("metascope_replay_violations_total",
			"clock-condition violations detected").With(),
		repairs: r.Counter("metascope_replay_repairs_total",
			"timestamp repairs applied (controlled logical clock)").With(),
		eventsPerSec: r.Gauge("metascope_replay_events_per_second",
			"trace events replayed per wall second, last analysis").With(),
		workersActive: r.Gauge("metascope_replay_workers_active",
			"analysis goroutines currently replaying").With(),
		ranksDone: r.Gauge("metascope_replay_ranks_done",
			"analysis processes finished, last analysis").With(),
		rankBytes: r.Histogram("metascope_replay_rank_bytes",
			"per-rank analysis-time communication volume", obs.BytesBuckets).With(),
		rankExternal: r.Histogram("metascope_replay_rank_external_bytes",
			"per-rank analysis-time traffic crossing metahost boundaries", obs.BytesBuckets).With(),
	}
}

// AnalyzeArchive is the end-to-end convenience path: load the archive
// from the mounts and analyze it. Archive loading is timed as the
// top-level "archive" phase.
func AnalyzeArchive(mounts *archive.Mounts, metahosts []int, dir string, cfg Config) (*Result, error) {
	return AnalyzeArchiveContext(context.Background(), mounts, metahosts, dir, cfg)
}

// AnalyzeArchiveContext is AnalyzeArchive honoring ctx through both the
// archive load and the analysis phases — the entry point services use
// to bound a job's lifetime and to free its workers on cancellation.
func AnalyzeArchiveContext(ctx context.Context, mounts *archive.Mounts, metahosts []int, dir string, cfg Config) (*Result, error) {
	span := obs.OrDefault(cfg.Obs).Phases.Start("archive")
	traces, err := LoadArchiveCtx(ctx, mounts, metahosts, dir, cfg.Obs)
	span.End()
	if err != nil {
		return nil, err
	}
	return AnalyzeContext(ctx, traces, cfg)
}

// CommVolume is one cell of the metahost communication matrix.
type CommVolume struct {
	Messages int
	Bytes    int64
}

// FormatCommMatrix renders the metahost communication matrix of a
// result as a table (rows: source metahost, columns: destination).
func (r *Result) FormatCommMatrix() string {
	ids := make([]int, 0, len(r.MetahostNames))
	for id := range r.MetahostNames {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	b.WriteString("Point-to-point communication by metahost pair (messages / MiB):\n")
	fmt.Fprintf(&b, "  %-12s", "src \\ dst")
	for _, d := range ids {
		fmt.Fprintf(&b, " %16s", r.MetahostNames[d])
	}
	b.WriteString("\n")
	for _, s := range ids {
		fmt.Fprintf(&b, "  %-12s", r.MetahostNames[s])
		for _, d := range ids {
			v := r.CommMatrix[[2]int{s, d}]
			fmt.Fprintf(&b, " %7d/%8.2f", v.Messages, float64(v.Bytes)/(1<<20))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TraceSizes returns every trace's encoded size in bytes — what
// merging-based analysis would have to copy between metahosts. The
// comparison with Result.ReplayBytes quantifies §4's argument for
// replay-based parallel analysis.
func TraceSizes(traces []*trace.Trace) ([]int64, error) {
	return TraceSizesFormat(traces, trace.FormatV1)
}

// TraceSizesFormat is TraceSizes for an explicit encoding format, so
// the v1-vs-v2 footprint comparison uses the same yardstick as the
// archive on disk. FormatDefault selects the current default writer
// format.
func TraceSizesFormat(traces []*trace.Trace, f trace.Format) ([]int64, error) {
	out := make([]int64, len(traces))
	for i, t := range traces {
		var cw countingWriter
		if err := t.EncodeFormat(&cw, f); err != nil {
			return nil, err
		}
		out[i] = cw.n
	}
	return out, nil
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
