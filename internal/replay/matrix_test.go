package replay

import (
	"strings"
	"testing"

	"metascope/internal/trace"
)

func TestCommMatrixAggregation(t *testing.T) {
	def := trace.CommDef{ID: 0, Ranks: []int32{0, 1, 2}}
	// Rank 0 (A) sends twice to rank 2 (B); rank 1 (A) sends once to
	// rank 0 (A). Matrix: A→B = 2 msgs/300 B, A→A = 1 msg/50 B.
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0),
		enter(1, 1), send(1, 2, 1, 100), exit(1.1, 1),
		enter(2, 1), send(2, 2, 2, 200), exit(2.1, 1),
		enter(3, 2), recv(3.5, 1, 3, 50), exit(3.5, 2),
		exit(10, 0),
	}, def)
	t1 := synth(1, 0, []trace.Event{
		enter(0, 0),
		enter(0.5, 1), send(0.5, 0, 3, 50), exit(0.6, 1),
		exit(10, 0),
	}, def)
	t2 := synth(2, 1, []trace.Event{
		enter(0, 0),
		enter(0.5, 2), recv(1.5, 0, 1, 100), exit(1.5, 2),
		enter(2, 2), recv(2.5, 0, 2, 200), exit(2.5, 2),
		exit(10, 0),
	}, def)
	res := analyze(t, []*trace.Trace{t0, t1, t2})

	ab := res.CommMatrix[[2]int{0, 1}]
	if ab.Messages != 2 || ab.Bytes != 300 {
		t.Errorf("A->B = %+v, want 2/300", ab)
	}
	aa := res.CommMatrix[[2]int{0, 0}]
	if aa.Messages != 1 || aa.Bytes != 50 {
		t.Errorf("A->A = %+v, want 1/50", aa)
	}
	if ba := res.CommMatrix[[2]int{1, 0}]; ba.Messages != 0 {
		t.Errorf("B->A = %+v, want empty", ba)
	}
	if res.MetahostNames[0] != "A" || res.MetahostNames[1] != "B" {
		t.Errorf("metahost names %v", res.MetahostNames)
	}
	out := res.FormatCommMatrix()
	for _, want := range []string{"src \\ dst", "A", "B", "2/"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix output missing %q:\n%s", want, out)
		}
	}
}

func TestReplayTrafficAccounting(t *testing.T) {
	// One intra-metahost and one inter-metahost message: only the
	// latter counts as external replay traffic.
	def := trace.CommDef{ID: 0, Ranks: []int32{0, 1, 2}}
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0),
		enter(1, 1), send(1, 1, 1, 10), exit(1.1, 1),
		enter(2, 1), send(2, 2, 2, 10), exit(2.1, 1),
		exit(10, 0),
	}, def)
	t1 := synth(1, 0, []trace.Event{
		enter(0, 0),
		enter(1, 2), recv(1.5, 0, 1, 10), exit(1.5, 2),
		exit(10, 0),
	}, def)
	t2 := synth(2, 1, []trace.Event{
		enter(0, 0),
		enter(2, 2), recv(2.5, 0, 2, 10), exit(2.5, 2),
		exit(10, 0),
	}, def)
	res := analyze(t, []*trace.Trace{t0, t1, t2})
	if got := res.ReplayBytes[0]; got != 2*sendRecordWire {
		t.Errorf("rank 0 replay bytes = %d, want %d", got, 2*sendRecordWire)
	}
	if got := res.ReplayExternalBytes[0]; got != sendRecordWire {
		t.Errorf("rank 0 external replay bytes = %d, want %d", got, sendRecordWire)
	}
	sizes, err := TraceSizes([]*trace.Trace{t0, t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sizes {
		if s <= 0 {
			t.Errorf("trace %d size %d", i, s)
		}
	}
}
