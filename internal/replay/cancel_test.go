package replay

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"metascope/internal/trace"
	"metascope/internal/vclock"
)

// The cancellation contract: AnalyzeContext must return promptly once
// its context is cancelled, no matter where the replay is stuck — a
// receiver waiting for a message that never comes, a collective waiting
// for a member that never joins, or a long event sweep — and the error
// must wrap the context's error. These situations cannot arise from a
// healthy archive (the traced application completed), but a service
// analyzing untrusted uploads needs a hard abort path.

// cancelDeadline bounds "promptly" generously enough for -race CI.
const cancelDeadline = 5 * time.Second

// analyzeCancelled runs AnalyzeContext in a goroutine, cancels the
// context after delay, and requires a context-wrapped error within
// cancelDeadline.
func analyzeCancelled(t *testing.T, traces []*trace.Trace, delay time.Duration) {
	t.Helper()
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := AnalyzeContext(ctx, traces, Config{Scheme: vclock.FlatSingle, Title: "cancel"})
		done <- err
	}()
	time.AfterFunc(delay, cancel)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled analysis returned no error")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error does not wrap context.Canceled: %v", err)
		}
	case <-time.After(cancelDeadline):
		t.Fatal("cancelled analysis did not return (replay stuck)")
	}
	// Every analysis goroutine (workers, watcher) must have unwound.
	waitNoLeak(t, before)
}

// waitNoLeak asserts the goroutine count returns to the baseline,
// allowing the runtime a moment to retire finished goroutines.
func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestAnalyzeContextCancelUnblocksReceive plants a receive whose
// matching send does not exist: rank 1 blocks in the mailbox forever.
// Cancellation must wake it.
func TestAnalyzeContextCancelUnblocksReceive(t *testing.T) {
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0), exit(10, 0),
	})
	t1 := synth(1, 0, []trace.Event{
		enter(0, 0),
		enter(1, 2), recv(5, 0, 7, 100), exit(5, 2),
		exit(10, 0),
	})
	analyzeCancelled(t, []*trace.Trace{t0, t1}, 50*time.Millisecond)
}

// TestAnalyzeContextCancelUnblocksCollective plants a barrier one rank
// never joins: rank 0 blocks in the gather. Cancellation must wake it.
func TestAnalyzeContextCancelUnblocksCollective(t *testing.T) {
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0),
		enter(1, 3), collExit(2, trace.CollBarrier, -1), exit(2, 3),
		exit(10, 0),
	})
	t1 := synth(1, 0, []trace.Event{
		enter(0, 0), exit(10, 0),
	})
	analyzeCancelled(t, []*trace.Trace{t0, t1}, 50*time.Millisecond)
}

// TestAnalyzeContextPreCancelled: a context cancelled before the call
// must abort before any phase runs.
func TestAnalyzeContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := synth(0, 0, []trace.Event{enter(0, 0), exit(1, 0)})
	t1 := synth(1, 0, []trace.Event{enter(0, 0), exit(1, 0)})
	_, err := AnalyzeContext(ctx, []*trace.Trace{t0, t1}, Config{Scheme: vclock.FlatSingle})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: err = %v, want context.Canceled", err)
	}
}

// TestAnalyzeContextSweepPoll cancels while both ranks are mid-sweep in
// a long event stream with no blocking operations at all — only the
// periodic poll can stop them. The stream must be long enough that the
// sweep is still running when the cancel lands; 2^20 events of pure
// enter/exit churn take well over the 1 ms cancel delay even on a fast
// machine, and the test only requires *prompt return*, so a sweep that
// finishes first would still pass the deadline but is made vanishingly
// unlikely by the volume.
func TestAnalyzeContextSweepPoll(t *testing.T) {
	const pairs = 1 << 19
	mk := func(rank int) *trace.Trace {
		events := make([]trace.Event, 0, 2*pairs+2)
		events = append(events, enter(0, 0))
		tt := 1.0
		for i := 0; i < pairs; i++ {
			events = append(events, enter(tt, 7), exit(tt+0.5, 7))
			tt++
		}
		events = append(events, exit(tt+1, 0))
		return synth(rank, 0, events)
	}
	analyzeCancelled(t, []*trace.Trace{mk(0), mk(1)}, time.Millisecond)
}

// TestAnalyzeContextCompletesUncancelled: a context that is never
// cancelled must not disturb a healthy analysis, and the watcher
// goroutine must exit with it.
func TestAnalyzeContextCompletesUncancelled(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0),
		enter(4, 1), send(4, 1, 7, 100), exit(4.5, 1),
		exit(10, 0),
	})
	t1 := synth(1, 0, []trace.Event{
		enter(0, 0),
		enter(1, 2), recv(5, 0, 7, 100), exit(5, 2),
		exit(10, 0),
	})
	res, err := AnalyzeContext(ctx, []*trace.Trace{t0, t1}, Config{Scheme: vclock.FlatSingle})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 1 {
		t.Fatalf("messages = %d, want 1", res.Messages)
	}
	waitNoLeak(t, before)
}

// TestLoadArchiveCtxCancelled: a cancelled context stops the decode
// pool; the error wraps the context error.
func TestLoadArchiveCtxCancelled(t *testing.T) {
	mounts, _, dir := loadFixture(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := LoadArchiveCtx(ctx, mounts, []int{0}, dir, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled load: err = %v, want context.Canceled", err)
	}
}
