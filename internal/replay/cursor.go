package replay

import (
	"sync"

	"metascope/internal/trace"
)

// rankLog is the append-only event log one analysis process sweeps.
// Post-mortem analysis wraps the fully loaded trace in a closed log;
// a live session appends events as upload chunks decode and closes the
// log when the rank's stream finishes. The sweep never sees a
// difference beyond *when* events become visible, which is the whole
// trick behind byte-identical streaming results: the worker's event
// order, and therefore every accumulator's addition order, is the
// trace order either way.
type rankLog struct {
	mu      sync.Mutex
	cond    sync.Cond
	events  []trace.Event
	closed  bool
	aborted bool
}

func newRankLog() *rankLog {
	lg := &rankLog{}
	lg.cond.L = &lg.mu
	return lg
}

// newClosedRankLog wraps an already complete event slice (post-mortem
// analysis) without copying.
func newClosedRankLog(events []trace.Event) *rankLog {
	lg := newRankLog()
	lg.events = events
	lg.closed = true
	return lg
}

// append publishes more events and wakes the sweeping worker.
func (lg *rankLog) append(events []trace.Event) {
	if len(events) == 0 {
		return
	}
	lg.mu.Lock()
	lg.events = append(lg.events, events...)
	lg.mu.Unlock()
	lg.cond.Broadcast()
}

// close marks the log complete: no more events will arrive.
func (lg *rankLog) close() {
	lg.mu.Lock()
	lg.closed = true
	lg.mu.Unlock()
	lg.cond.Broadcast()
}

// abort wakes a blocked sweep so a cancelled analysis unwinds.
func (lg *rankLog) abort() {
	lg.mu.Lock()
	lg.aborted = true
	lg.mu.Unlock()
	lg.cond.Broadcast()
}

// view blocks until the log holds more than have events, is closed, or
// is aborted, and returns a snapshot of the current state. The
// returned slice is immutable: append only ever grows the log, and a
// reallocation leaves old snapshots intact.
func (lg *rankLog) view(have int) (events []trace.Event, closed, aborted bool) {
	lg.mu.Lock()
	for len(lg.events) == have && !lg.closed && !lg.aborted {
		lg.cond.Wait()
	}
	events, closed, aborted = lg.events, lg.closed, lg.aborted
	lg.mu.Unlock()
	return events, closed, aborted
}

// snapshotIfClosed returns the complete event slice when the log was
// closed before the sweep started — the post-mortem fast path, which
// lets the worker pre-size its receive log.
func (lg *rankLog) snapshotIfClosed() ([]trace.Event, bool) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if lg.closed {
		return lg.events, true
	}
	return nil, false
}

// sweepCursor is one worker's forward view of a rankLog. at(i) reports
// whether event i exists, blocking while it may still arrive; events
// holds every event visible so far (valid up to the largest index at
// returned true for).
type sweepCursor struct {
	lg      *rankLog
	events  []trace.Event
	closed  bool
	aborted bool
}

func newSweepCursor(lg *rankLog) *sweepCursor {
	sc := &sweepCursor{lg: lg}
	lg.mu.Lock()
	sc.events, sc.closed, sc.aborted = lg.events, lg.closed, lg.aborted
	lg.mu.Unlock()
	return sc
}

// at blocks until event i is visible and returns true, or returns
// false when the log ended (closed before reaching i, or aborted).
func (sc *sweepCursor) at(i int) bool {
	for i >= len(sc.events) {
		if sc.closed || sc.aborted {
			return false
		}
		sc.events, sc.closed, sc.aborted = sc.lg.view(len(sc.events))
	}
	return true
}
