package replay

import (
	"fmt"
	"io"
	"sync"

	"metascope/internal/trace"
)

// liveLogStride is the events-per-block granularity of an appending
// (live-session) rank log. Each block is one allocation, so releasing
// the swept prefix actually returns memory; 4096 events keeps the
// bookkeeping to one block handoff per few hundred KiB of trace.
const liveLogStride = 1 << 12

// rankLog is the append-only event log one analysis process sweeps.
// Post-mortem analysis wraps the fully loaded trace in a closed log; a
// live session appends events as upload chunks decode and closes the
// log when the rank's stream finishes; a lazy log decodes v2 event
// blocks on demand, straight out of the archive's backing byte image.
// The sweep never sees a difference beyond *when* events become
// visible, which is the whole trick behind byte-identical streaming
// results: the worker's event order, and therefore every accumulator's
// addition order, is the trace order either way.
//
// Appending and lazy logs store events in fixed-stride blocks, each its
// own allocation, so releaseBefore can free the already-swept prefix —
// the bounded-memory window that lets an archive larger than RAM
// stream through one analysis.
type rankLog struct {
	mu      sync.Mutex
	cond    sync.Cond
	closed  bool
	aborted bool
	err     error // lazy decode/validation failure, sticky

	// flat is the post-mortem fast path: the complete, immutable event
	// slice. When non-nil, blocks/stride are unused and nothing is ever
	// released (the memory is one allocation the caller owns anyway).
	flat []trace.Event

	// Block storage (append and lazy modes).
	blocks [][]trace.Event
	stride int
	n      int // events visible to the sweep

	// Lazy mode: blocks decode on demand from the reader.
	lazy          *trace.BlockReader
	val           *trace.StreamValidator
	decodedBlocks int

	// Memory accounting (events, not bytes: one Event is a fixed-size
	// struct). resident counts events currently held in block storage;
	// maxResident is the high-water mark a bounded-memory run pins.
	resident    int
	maxResident int

	// Raw (uncorrected) first/last event times, tracked so the profile
	// axis can be derived without re-reading events — the trace they
	// came from may hold no event slice at all.
	haveTime            bool
	firstTime, lastTime float64
}

func newRankLog() *rankLog {
	lg := &rankLog{stride: liveLogStride}
	lg.cond.L = &lg.mu
	return lg
}

// newClosedRankLog wraps an already complete event slice (post-mortem
// analysis) without copying.
func newClosedRankLog(events []trace.Event) *rankLog {
	lg := newRankLog()
	lg.flat = events
	lg.n = len(events)
	lg.resident = len(events)
	lg.maxResident = len(events)
	if len(events) > 0 {
		lg.haveTime = true
		lg.firstTime = events[0].Time
		lg.lastTime = events[len(events)-1].Time
	}
	lg.closed = true
	return lg
}

// newLazyRankLog wraps a v2 block reader: the log is closed (the event
// count is declared up front), but blocks materialize only when the
// sweep reaches them and are freed behind it. Events are validated as
// they decode, with exactly the checks (*Trace).Validate applies to a
// materialized trace.
func newLazyRankLog(r *trace.BlockReader) (*rankLog, error) {
	lg := &rankLog{
		lazy:   r,
		val:    trace.NewStreamValidator(r.Trace()),
		stride: r.BlockSize(),
		n:      r.Total(),
		closed: true,
	}
	lg.cond.L = &lg.mu
	lg.blocks = make([][]trace.Event, (lg.n+lg.stride-1)/lg.stride)
	r.Reset()
	if lg.n == 0 {
		if t := r.Trailing(); t > 0 {
			return nil, fmt.Errorf("trace %v: %d trailing byte(s) after 0 declared events",
				r.Trace().Loc, t)
		}
	}
	return lg, nil
}

// append publishes more events and wakes the sweeping worker. Events
// are copied into fixed-stride blocks so the swept prefix can be
// released block by block.
func (lg *rankLog) append(events []trace.Event) {
	if len(events) == 0 {
		return
	}
	lg.mu.Lock()
	if !lg.haveTime {
		lg.haveTime = true
		lg.firstTime = events[0].Time
	}
	lg.lastTime = events[len(events)-1].Time
	for len(events) > 0 {
		k := lg.n / lg.stride
		off := lg.n % lg.stride
		if k == len(lg.blocks) {
			lg.blocks = append(lg.blocks, make([]trace.Event, 0, lg.stride))
		}
		blk := lg.blocks[k]
		take := lg.stride - off
		if take > len(events) {
			take = len(events)
		}
		lg.blocks[k] = append(blk, events[:take]...)
		events = events[take:]
		lg.n += take
		lg.resident += take
	}
	if lg.resident > lg.maxResident {
		lg.maxResident = lg.resident
	}
	lg.mu.Unlock()
	lg.cond.Broadcast()
}

// close marks the log complete: no more events will arrive.
func (lg *rankLog) close() {
	lg.mu.Lock()
	lg.closed = true
	lg.mu.Unlock()
	lg.cond.Broadcast()
}

// abort wakes a blocked sweep so a cancelled analysis unwinds.
func (lg *rankLog) abort() {
	lg.mu.Lock()
	lg.aborted = true
	lg.mu.Unlock()
	lg.cond.Broadcast()
}

// wait blocks until the log holds more than have events, is closed, or
// is aborted, and returns the visible count and flags.
func (lg *rankLog) wait(have int) (n int, closed, aborted bool) {
	lg.mu.Lock()
	for lg.n == have && !lg.closed && !lg.aborted {
		lg.cond.Wait()
	}
	n, closed, aborted = lg.n, lg.closed, lg.aborted
	lg.mu.Unlock()
	return n, closed, aborted
}

// recvCountIfFlat counts the Recv events when the whole log is present
// as one materialized slice — the post-mortem fast path, which lets the
// worker pre-size its receive log. Lazy and live logs return ok=false:
// counting would force every block resident, defeating the window.
func (lg *rankLog) recvCountIfFlat() (int, bool) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if lg.flat == nil || !lg.closed {
		return 0, false
	}
	nrecv := 0
	for i := range lg.flat {
		if lg.flat[i].Kind == trace.KindRecv {
			nrecv++
		}
	}
	return nrecv, true
}

// bounds returns the raw first/last event times the log has seen.
// Valid for a flat or lazy log immediately, and for a live log once
// every chunk was appended; the analyzer reads it after the sweep.
func (lg *rankLog) bounds() (first, last float64, ok bool) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.firstTime, lg.lastTime, lg.haveTime
}

// residentEvents returns the current and peak number of events held in
// storage.
func (lg *rankLog) residentEvents() (resident, peak int) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.resident, lg.maxResident
}

// window returns the block slice containing event i plus the global
// index of its first element, decoding lazy blocks on demand. The
// returned slice is stable: a live append extends the same backing
// array without moving published elements.
func (lg *rankLog) window(i int) ([]trace.Event, int, error) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if lg.flat != nil {
		return lg.flat, 0, nil
	}
	k := i / lg.stride
	if lg.lazy != nil {
		if err := lg.decodeToLocked(k); err != nil {
			return nil, 0, err
		}
	}
	blk := lg.blocks[k]
	if blk == nil {
		// The single-reader discipline (release only below the sweep
		// frontier) makes this unreachable; a hit is a replay bug.
		panic(fmt.Sprintf("replay: rank log block %d used after release", k))
	}
	return blk, k * lg.stride, nil
}

// decodeToLocked materializes lazy blocks up to and including index k.
// Decoded events are validated in stream order; the final block also
// checks the end-of-trace invariants (balanced regions, no trailing
// bytes) that a one-shot decode enforces eagerly.
func (lg *rankLog) decodeToLocked(k int) error {
	if lg.err != nil {
		return lg.err
	}
	for lg.decodedBlocks <= k {
		buf := make([]trace.Event, lg.stride)
		n, err := lg.lazy.Next(buf)
		if err == io.EOF {
			err = fmt.Errorf("trace %v: blocks ended after %d of %d declared events: %w",
				lg.lazy.Trace().Loc, lg.decodedBlocks*lg.stride, lg.n, io.ErrUnexpectedEOF)
		}
		if err != nil {
			lg.err = err
			return err
		}
		last := lg.decodedBlocks == len(lg.blocks)-1
		if !last && n != lg.stride {
			// Fixed-stride indexing depends on every non-final block
			// being full, which the encoder guarantees; a short inner
			// block is a corrupt image.
			lg.err = fmt.Errorf("trace %v: block %d holds %d events, want %d",
				lg.lazy.Trace().Loc, lg.decodedBlocks, n, lg.stride)
			return lg.err
		}
		for i := 0; i < n; i++ {
			if err := lg.val.Event(&buf[i]); err != nil {
				lg.err = err
				return err
			}
		}
		if n > 0 {
			if !lg.haveTime {
				lg.haveTime = true
				lg.firstTime = buf[0].Time
			}
			lg.lastTime = buf[n-1].Time
		}
		lg.blocks[lg.decodedBlocks] = buf[:n:n]
		lg.decodedBlocks++
		lg.resident += n
		if lg.resident > lg.maxResident {
			lg.maxResident = lg.resident
		}
		if last {
			if err := lg.val.Close(); err != nil {
				lg.err = err
				return err
			}
			if t := lg.lazy.Trailing(); t > 0 {
				lg.err = fmt.Errorf("trace %v: %d trailing byte(s) after %d declared events",
					lg.lazy.Trace().Loc, t, lg.n)
				return lg.err
			}
		}
	}
	return nil
}

// releaseBefore frees every block that lies entirely below event index
// i. Only the sweeping worker calls it, and only with its own frontier,
// so no released block can still be referenced. Flat logs ignore it.
func (lg *rankLog) releaseBefore(i int) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if lg.flat != nil {
		return
	}
	limit := i / lg.stride
	if limit > len(lg.blocks) {
		limit = len(lg.blocks)
	}
	for k := 0; k < limit; k++ {
		if lg.blocks[k] != nil {
			lg.resident -= len(lg.blocks[k])
			lg.blocks[k] = nil
		}
	}
}

// sweepCursor is one worker's forward view of a rankLog. at(i) reports
// whether event i exists, blocking while it may still arrive; ev(i)
// returns the event itself, caching one block so the sequential sweep
// touches the log's lock once per block, not once per event.
type sweepCursor struct {
	lg      *rankLog
	blk     []trace.Event
	base    int // global index of blk[0]
	n       int // visible-event count last observed
	closed  bool
	aborted bool
	err     error // lazy decode failure surfaced through ev

	stride   int
	canFree  bool // block-structured log: release swept blocks
	released int  // last block index already released
}

func newSweepCursor(lg *rankLog) *sweepCursor {
	sc := &sweepCursor{lg: lg, stride: lg.stride, base: -1}
	lg.mu.Lock()
	sc.n, sc.closed, sc.aborted = lg.n, lg.closed, lg.aborted
	sc.canFree = lg.flat == nil
	if lg.flat != nil {
		sc.blk, sc.base = lg.flat, 0
	}
	lg.mu.Unlock()
	return sc
}

// at blocks until event i is visible and returns true, or returns
// false when the log ended (closed before reaching i, or aborted).
func (sc *sweepCursor) at(i int) bool {
	for i >= sc.n {
		if sc.closed || sc.aborted {
			return false
		}
		sc.n, sc.closed, sc.aborted = sc.lg.wait(sc.n)
	}
	return true
}

// ev returns event i, which at(i) must have admitted. A nil result
// means the log failed to materialize the event (a lazy decode or
// validation error); the cause is in sc.err and is the same error the
// post-mortem validator would have reported for the same bytes.
func (sc *sweepCursor) ev(i int) *trace.Event {
	if off := i - sc.base; off >= 0 && off < len(sc.blk) {
		return &sc.blk[off]
	}
	blk, base, err := sc.lg.window(i)
	if err != nil {
		sc.err = err
		return nil
	}
	sc.blk, sc.base = blk, base
	return &sc.blk[i-base]
}

// release frees the log's blocks below the sweep frontier i. Called
// once per event; it touches the log only when the frontier crosses a
// block boundary.
func (sc *sweepCursor) release(i int) {
	if !sc.canFree {
		return
	}
	if k := i / sc.stride; k > sc.released {
		sc.released = k
		sc.lg.releaseBefore(i)
	}
}
