package replay

import (
	"sync"
	"testing"
)

func rec(comm, src, tag int32, bytes int64) sendRecord {
	return sendRecord{comm: comm, srcWorld: src, tag: tag, bytes: bytes}
}

// takeOK is take asserting the mailbox was not aborted — the only mode
// these matching tests exercise.
func (mb *mailbox) takeOK(comm, src, tag int32) sendRecord {
	r, ok := mb.take(comm, src, tag)
	if !ok {
		panic("mailbox: take aborted unexpectedly")
	}
	return r
}

func TestMailboxFIFOPerSignature(t *testing.T) {
	mb := newMailbox()
	mb.put(rec(0, 1, 7, 100))
	mb.put(rec(0, 1, 7, 200))
	mb.put(rec(0, 1, 7, 300))
	for i, want := range []int64{100, 200, 300} {
		if got := mb.takeOK(0, 1, 7); got.bytes != want {
			t.Fatalf("take %d: bytes = %d, want %d", i, got.bytes, want)
		}
	}
}

func TestMailboxSignaturesAreIndependent(t *testing.T) {
	mb := newMailbox()
	// Interleave four signatures; each must match only its own cell.
	mb.put(rec(0, 1, 1, 11))
	mb.put(rec(0, 2, 1, 21)) // different source
	mb.put(rec(0, 1, 2, 12)) // different tag
	mb.put(rec(1, 1, 1, 31)) // different communicator
	if got := mb.takeOK(1, 1, 1); got.bytes != 31 {
		t.Errorf("comm 1 take = %d, want 31", got.bytes)
	}
	if got := mb.takeOK(0, 1, 2); got.bytes != 12 {
		t.Errorf("tag 2 take = %d, want 12", got.bytes)
	}
	if got := mb.takeOK(0, 2, 1); got.bytes != 21 {
		t.Errorf("src 2 take = %d, want 21", got.bytes)
	}
	if got := mb.takeOK(0, 1, 1); got.bytes != 11 {
		t.Errorf("src 1 take = %d, want 11", got.bytes)
	}
}

// TestMailboxTakeReleasesMatchedRecords is the regression test for the
// old scan-and-splice take, whose append(msgs[:i], msgs[i+1:]...) left
// a dead copy of the last record alive in the slice's spare capacity.
// After a take, the mailbox's backing storage must hold no trace of
// the matched record.
func TestMailboxTakeReleasesMatchedRecords(t *testing.T) {
	mb := newMailbox()
	s := sig{comm: 0, src: 1, tag: 7}
	mb.put(rec(0, 1, 7, 42))
	mb.put(rec(0, 1, 7, 43))
	mb.put(rec(0, 1, 7, 44))
	if got := mb.takeOK(0, 1, 7); got.bytes != 42 {
		t.Fatalf("take = %d, want 42", got.bytes)
	}

	mb.mu.Lock()
	c, ok := mb.q[s]
	if !ok {
		t.Fatal("signature cell vanished with records pending")
	}
	if c.count != 2 || c.first.bytes != 43 {
		t.Fatalf("cell after take: count=%d first=%d, want 2/43", c.count, c.first.bytes)
	}
	// Every shifted spill slot — and the spare capacity beyond the live
	// window — must be zeroed.
	zero := sendRecord{}
	for i := 0; i < c.head; i++ {
		if c.rest[i] != zero {
			t.Errorf("spill slot %d still holds matched record %+v", i, c.rest[i])
		}
	}
	for _, r := range c.rest[len(c.rest):cap(c.rest)] {
		if r != zero {
			t.Errorf("spare spill capacity holds dead record %+v", r)
		}
	}
	mb.mu.Unlock()

	// Draining the signature deletes its cell outright — no cached
	// state (and no reference to any record) survives.
	mb.takeOK(0, 1, 7)
	mb.takeOK(0, 1, 7)
	mb.mu.Lock()
	if _, ok := mb.q[s]; ok {
		t.Error("drained signature still has a cell in the mailbox")
	}
	if len(mb.q) != 0 {
		t.Errorf("drained mailbox holds %d cells", len(mb.q))
	}
	mb.mu.Unlock()
}

// TestMailboxBlockingTake checks that a take posted before the
// matching put blocks and is woken by it — receivers may replay ahead
// of their senders.
func TestMailboxBlockingTake(t *testing.T) {
	mb := newMailbox()
	got := make(chan sendRecord, 1)
	go func() { got <- mb.takeOK(0, 1, 9) }()
	mb.put(rec(0, 1, 9, 77))
	if r := <-got; r.bytes != 77 {
		t.Fatalf("blocked take = %d, want 77", r.bytes)
	}
}

// TestMailboxConcurrentPairs drives many sender/receiver pairs through
// one mailbox concurrently; under -race this checks the cell shuffling
// in put/take against simultaneous access from both sides.
func TestMailboxConcurrentPairs(t *testing.T) {
	const senders = 8
	const msgs = 200
	mb := newMailbox()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int32) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				mb.put(rec(0, s, s%3, int64(i)))
			}
		}(int32(s))
	}
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int32) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				if got := mb.takeOK(0, s, s%3); got.bytes != int64(i) {
					t.Errorf("src %d take %d: bytes = %d, want %d", s, i, got.bytes, i)
					return
				}
			}
		}(int32(s))
	}
	wg.Wait()
}

// TestMailboxAbortWakesBlockedTake checks the cancellation path: a
// receiver blocked on a message that will never arrive must be woken
// by setAbort and told the analysis ended, and any take after the
// abort must fail immediately instead of blocking.
func TestMailboxAbortWakesBlockedTake(t *testing.T) {
	mb := newMailbox()
	woken := make(chan bool, 1)
	go func() {
		_, ok := mb.take(0, 1, 9)
		woken <- ok
	}()
	mb.setAbort()
	if ok := <-woken; ok {
		t.Fatal("aborted take reported ok=true")
	}
	if _, ok := mb.take(0, 2, 3); ok {
		t.Fatal("take after abort reported ok=true")
	}
	// Records already delivered are still matchable after an abort — the
	// receiver decides between draining and unwinding.
	mb.put(rec(0, 1, 7, 5))
	if r, ok := mb.take(0, 1, 7); !ok || r.bytes != 5 {
		t.Fatalf("pending record after abort: ok=%v bytes=%d", ok, r.bytes)
	}
}

// TestMailboxVaryingPairsStaysCompact replays the clockbench
// varying-pairs pattern — every signature used exactly once — and
// checks the mailbox does not accumulate state: drained cells are
// deleted, so the signature map stays at its floor no matter how many
// distinct pairs pass through.
func TestMailboxVaryingPairsStaysCompact(t *testing.T) {
	mb := newMailbox()
	for src := int32(0); src < 1000; src++ {
		mb.put(rec(0, src, 4100, int64(src)))
		if got := mb.takeOK(0, src, 4100); got.bytes != int64(src) {
			t.Fatalf("src %d: bytes = %d", src, got.bytes)
		}
	}
	mb.mu.Lock()
	n := len(mb.q)
	mb.mu.Unlock()
	if n != 0 {
		t.Fatalf("mailbox retains %d cells after 1000 drained pairs", n)
	}
}
