package replay

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"metascope/internal/trace"
	"metascope/internal/vclock"
)

func timelineTraces() []*trace.Trace {
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0),
		enter(1, 1), send(1, 1, 7, 100), exit(1.5, 1),
		enter(2, 3), collExit(2.5, trace.CollBarrier, -1), exit(2.5, 3),
		exit(10, 0),
	})
	t1 := synth(1, 1, []trace.Event{
		enter(0, 0),
		enter(0.5, 2), recv(1.6, 0, 7, 100), exit(1.6, 2),
		enter(2, 3), collExit(2.5, trace.CollBarrier, -1), exit(2.5, 3),
		exit(10, 0),
	})
	return []*trace.Trace{t0, t1}
}

func TestExportTimelineValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportTimeline(&buf, timelineTraces(), vclock.FlatSingle); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var b, e, s, f, meta, inst int
	for _, ev := range events {
		switch ev["ph"] {
		case "B":
			b++
		case "E":
			e++
		case "s":
			s++
		case "f":
			f++
		case "M":
			meta++
		case "i":
			inst++
		}
	}
	if b != e {
		t.Errorf("unbalanced begin/end: %d vs %d", b, e)
	}
	if b != 6 { // 3 region instances per rank
		t.Errorf("begin events %d, want 6", b)
	}
	if s != 1 || f != 1 {
		t.Errorf("flow events %d/%d, want 1/1", s, f)
	}
	if meta != 2 {
		t.Errorf("metadata rows %d, want 2", meta)
	}
	if inst != 2 { // one barrier instant per rank
		t.Errorf("instant events %d, want 2", inst)
	}
}

func TestExportTimelineProfileCounterTracks(t *testing.T) {
	// Analyze the same traces the timeline exports, then merge the
	// resulting profile as counter tracks and round-trip the output
	// through the Chrome trace-event schema: every event must carry a
	// valid "ph", and every "C" event a pid, a finite ts, and a numeric
	// args value.
	traces := timelineTraces()
	res := analyze(t, traces)
	if res.Profile.Empty() {
		t.Fatal("analysis produced no profile series")
	}
	var buf bytes.Buffer
	if err := ExportTimelineProfile(&buf, timelineTraces(), vclock.FlatSingle, res.Profile); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	counters := 0
	names := make(map[string]bool)
	for _, ev := range events {
		ph, ok := ev["ph"].(string)
		if !ok || !strings.ContainsAny(ph, "BEsfMiC") || len(ph) != 1 {
			t.Fatalf("bad ph in %v", ev)
		}
		if ph != "C" {
			continue
		}
		counters++
		names[ev["name"].(string)] = true
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("counter without pid: %v", ev)
		}
		ts, ok := ev["ts"].(float64)
		if !ok || math.IsNaN(ts) || math.IsInf(ts, 0) {
			t.Fatalf("counter with bad ts: %v", ev)
		}
		args, ok := ev["args"].(map[string]interface{})
		if !ok {
			t.Fatalf("counter without args: %v", ev)
		}
		if _, ok := args["value"].(float64); !ok {
			t.Fatalf("counter args not numeric: %v", ev)
		}
	}
	// Each (metric, metahost) row contributes buckets+1 samples.
	rows := 0
	for _, m := range res.Profile.Metrics() {
		rows += len(res.Profile.ByMetahost(m))
	}
	if want := rows * (res.Profile.Buckets + 1); counters != want {
		t.Errorf("counter events %d, want %d (%d rows × %d samples)", counters, want, rows, res.Profile.Buckets+1)
	}
	if len(names) != len(res.Profile.Metrics()) {
		t.Errorf("counter track names %v, want one per metric %v", names, res.Profile.Metrics())
	}
	// The nil-profile path stays byte-compatible with ExportTimeline.
	var plain, withNil bytes.Buffer
	if err := ExportTimeline(&plain, timelineTraces(), vclock.FlatSingle); err != nil {
		t.Fatal(err)
	}
	if err := ExportTimelineProfile(&withNil, timelineTraces(), vclock.FlatSingle, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), withNil.Bytes()) {
		t.Error("nil profile changes timeline output")
	}
}

func TestExportTimelineFlowIDsMatch(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportTimeline(&buf, timelineTraces(), vclock.FlatSingle); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	var sendID, recvID string
	for _, ev := range events {
		switch ev["ph"] {
		case "s":
			sendID = ev["id"].(string)
		case "f":
			recvID = ev["id"].(string)
		}
	}
	if sendID == "" || sendID != recvID {
		t.Fatalf("flow ids do not match: %q vs %q", sendID, recvID)
	}
	if !strings.HasPrefix(sendID, "m0.0.1.7.") {
		t.Errorf("flow id %q does not encode comm/src/dst/tag", sendID)
	}
}

func TestExportTimelineUsesCorrectedTimes(t *testing.T) {
	traces := timelineTraces()
	// Give rank 1 a +100 offset measurement: its events shift by -100
	// relative to its raw time stamps... i.e. raw times +100 map back.
	traces[1].Sync = trace.SyncData{
		FlatStart: vclock.Measurement{Local: 0, Offset: -100},
		FlatEnd:   vclock.Measurement{Local: 10, Offset: -100},
	}
	var buf bytes.Buffer
	if err := ExportTimeline(&buf, traces, vclock.FlatSingle); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev["ph"] == "B" && ev["tid"] == float64(1) {
			if ts := ev["ts"].(float64); ts > 0 {
				t.Fatalf("rank 1 events not corrected: first enter at %g us", ts)
			}
			return
		}
	}
	t.Fatalf("rank 1 events missing")
}
