package replay

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"metascope/internal/obs"
	"metascope/internal/obs/flight"
	"metascope/internal/trace"
	"metascope/internal/vclock"
)

// This file is the live (streaming) analysis engine: the same parallel
// replay as Analyze, but fed incrementally while the experiment's
// trace archive is still being uploaded rank by rank, chunk by chunk.
//
// The design invariant is byte-determinism with the post-mortem path:
// every worker sweeps its rank's events in trace order through a
// cursor (blocking while bytes are in flight instead of indexing a
// complete slice), every accumulator therefore performs the exact
// same additions in the exact same order, and the profile axis is
// derived only at finalize — so feeding the same archive in any chunk
// sizes and any rank interleaving yields a Result whose cube and
// profile artifacts are byte-identical to Analyze over the whole
// archive. The conformance suite asserts this.
//
// While the replay runs, scored severities are additionally deposited
// into fixed time windows (streamSink); a scheduler goroutine drains
// the sink periodically and publishes window deltas, the low-watermark
// frontier (the minimum corrected sweep time over all ranks — no
// event before it can still be scored, except for sender-side
// amendments, which are flagged), and per-rank ingest lag as
// StreamEvents. The serve layer forwards them over SSE.

// LiveConfig configures a live analysis session.
type LiveConfig struct {
	Config
	// Ranks is the world size, declared when the session is created.
	Ranks int
	// WindowSec is the severity-window width in corrected seconds.
	// Zero selects 1 s.
	WindowSec float64
	// EmitEvery is the scheduler's drain period. Zero selects 50 ms.
	EmitEvery time.Duration
	// OnEvent receives every stream event, in sequence order, from the
	// engine's goroutines. The callback must be fast and must not call
	// back into the Live session.
	OnEvent func(StreamEvent)
	// WindowBudget is an advisory per-rank resident-event target for
	// flow control. The engine always releases swept event blocks (its
	// memory is bounded by the gap between ingest and sweep, not the
	// archive size), but it never blocks FeedChunk — a hard limit could
	// deadlock when a message match needs events further ahead than the
	// budget allows. Feeders that want a pinned ceiling throttle
	// themselves by polling Resident against this budget. Zero means
	// unreported.
	WindowBudget int
}

// StreamEvent is one event of a live session's output stream. Exactly
// one of the payload pointers is set, matching Type.
type StreamEvent struct {
	Seq      uint64         `json:"seq"`
	Type     string         `json:"type"` // "window" | "frontier" | "state" | "summary"
	Window   *WindowEvent   `json:"window,omitempty"`
	Frontier *FrontierEvent `json:"frontier,omitempty"`
	State    *StateEvent    `json:"state,omitempty"`
	Summary  *SummaryEvent  `json:"summary,omitempty"`
}

// WindowDelta is severity mass added to one series within one window.
type WindowDelta struct {
	Metric   string  `json:"metric"`
	Metahost int     `json:"metahost"`
	Value    float64 `json:"value"`
}

// WindowEvent reports new severity mass in one time window.
type WindowEvent struct {
	Index int64   `json:"index"`
	Start float64 `json:"start"` // corrected seconds
	End   float64 `json:"end"`
	// Closed: the progress frontier has passed this window's end, so
	// barring amendments its deltas are final.
	Closed bool `json:"closed"`
	// Amended: this window had already been reported closed and new
	// mass still arrived (sender-side severities are deposited at the
	// send time, which the frontier may have passed). Consumers must
	// add deltas, never overwrite.
	Amended bool          `json:"amended,omitempty"`
	Deltas  []WindowDelta `json:"deltas"`
}

// RankLag is one rank's ingest position.
type RankLag struct {
	Rank     int     `json:"rank"`
	Metahost string  `json:"metahost,omitempty"`
	Events   int64   `json:"events"`
	Bytes    int64   `json:"bytes"`
	Ingested float64 `json:"ingested,omitempty"` // last ingested corrected ts
	HasTime  bool    `json:"has_time"`
	Finished bool    `json:"finished"`
}

// FrontierEvent reports the analysis frontier positions.
type FrontierEvent struct {
	// Progress is the low-watermark replay frontier: the minimum
	// corrected sweep time over all ranks. Valid only when every rank
	// has started and at least one is not yet done.
	Progress      float64 `json:"progress,omitempty"`
	ProgressValid bool    `json:"progress_valid"`
	// Ingest is the minimum last-ingested corrected timestamp over all
	// ranks — how far the slowest upload has reached.
	Ingest      float64 `json:"ingest,omitempty"`
	IngestValid bool    `json:"ingest_valid"`
	// ClosedThrough is the highest window index closed so far (windows
	// 0..ClosedThrough are final barring amendments); math.MinInt64
	// means none.
	ClosedThrough int64     `json:"closed_through"`
	Ranks         []RankLag `json:"ranks,omitempty"`
}

// StateEvent reports a session lifecycle transition.
type StateEvent struct {
	State string `json:"state"` // "open" | "running" | "done" | "failed"
	Error string `json:"error,omitempty"`
}

// SummaryEvent closes the stream: cumulative per-series totals and the
// final analysis statistics, for consumers that joined late.
type SummaryEvent struct {
	Totals        []WindowDelta `json:"totals"`
	WindowsClosed int64         `json:"windows_closed"`
	Messages      int           `json:"messages"`
	Collectives   int           `json:"collectives"`
	Violations    int           `json:"violations"`
}

// liveRank is the per-rank ingest state of a live session.
type liveRank struct {
	mu       sync.Mutex
	dec      *trace.ChunkDecoder
	log      *rankLog
	corr     vclock.LinearMap
	haveCorr bool
	finished bool

	bytes      atomic.Int64
	events     atomic.Int64
	lastIngest atomic.Uint64 // corrected ts bits of the last ingested event
	haveIngest atomic.Bool
}

// Live is one live analysis session. Feed chunks with FeedChunk (any
// rank interleaving; per-rank order is the caller's contract), close
// each rank's stream with FinishRank, then Finalize to obtain the
// Result. FeedChunk may be called concurrently for different ranks.
type Live struct {
	cfg LiveConfig
	rec *obs.Recorder
	m   *streamMetrics
	fw  *flight.Writer
	fn  flight.NameID

	ranks  []*liveRank
	intern *trace.Interner

	emitMu sync.Mutex
	seq    uint64

	mu       sync.Mutex
	state    string
	traces   []*trace.Trace
	builder  *vclock.Builder
	headers  int
	started  bool
	abortErr error
	a        *analyzer

	sink      *streamSink
	runDone   chan struct{}
	schedStop chan struct{}
	schedDone chan struct{}

	// Scheduler-goroutine-only state (the final drain runs after the
	// scheduler has stopped, so no lock is needed).
	closedThrough int64
	closedSet     map[int64]bool
}

// NewLive opens a live analysis session for a world of cfg.Ranks
// processes.
func NewLive(cfg LiveConfig) (*Live, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("replay: live session needs a positive rank count, got %d", cfg.Ranks)
	}
	if cfg.EagerLimit <= 0 {
		cfg.EagerLimit = 64 << 10
	}
	if cfg.Title == "" {
		// Match AnalyzeContext's default so the report artifact of a
		// default-titled live session is byte-identical to the
		// post-mortem one.
		cfg.Title = fmt.Sprintf("experiment (%d processes, %v)", cfg.Ranks, cfg.Scheme)
	}
	if cfg.WindowSec <= 0 {
		cfg.WindowSec = 1
	}
	if cfg.EmitEvery <= 0 {
		cfg.EmitEvery = 50 * time.Millisecond
	}
	rec := obs.OrDefault(cfg.Obs)
	l := &Live{
		cfg:           cfg,
		rec:           rec,
		m:             newStreamMetrics(rec),
		ranks:         make([]*liveRank, cfg.Ranks),
		intern:        trace.NewInterner(),
		state:         "open",
		traces:        make([]*trace.Trace, cfg.Ranks),
		builder:       vclock.NewBuilder(cfg.Scheme, cfg.Ranks),
		sink:          newStreamSink(0, cfg.WindowSec),
		runDone:       make(chan struct{}),
		schedStop:     make(chan struct{}),
		schedDone:     make(chan struct{}),
		closedThrough: math.MinInt64,
		closedSet:     make(map[int64]bool),
	}
	l.fw = rec.Flight.Writer(flight.WindowActor)
	if l.fw != nil {
		l.fn = rec.Flight.Name("window-drain")
	}
	for i := range l.ranks {
		l.ranks[i] = &liveRank{dec: trace.NewChunkDecoder(l.intern), log: newRankLog()}
		// The rank log holds the only copy of the events the sweep still
		// needs; accumulating a second, never-released copy on the
		// decoder's Trace would defeat the bounded window.
		l.ranks[i].dec.DiscardEvents = true
	}
	l.emit(StreamEvent{Type: "state", State: &StateEvent{State: "open"}})
	return l, nil
}

// rankCorrection derives one rank's clock-correction map from its own
// trace header under the given scheme — the per-rank ingredient of
// BuildCorrections, which is what makes incremental synchronization
// over a prefix of the archive exact rather than approximate.
func rankCorrection(t *trace.Trace, scheme vclock.Scheme) (vclock.LinearMap, error) {
	switch scheme {
	case vclock.FlatSingle, vclock.FlatInterp:
		return vclock.FlatCorrection(scheme, t.Sync.FlatStart, t.Sync.FlatEnd)
	case vclock.Hierarchical:
		return vclock.HierarchicalCorrection(vclock.HierarchicalInput{
			Rank:            t.Loc.Rank,
			SlaveStart:      t.Sync.LocalStart,
			SlaveEnd:        t.Sync.LocalEnd,
			MasterStart:     t.Sync.MasterStart,
			MasterEnd:       t.Sync.MasterEnd,
			SharedNodeClock: t.Sync.SharedNodeClock,
		}), nil
	default:
		return vclock.LinearMap{}, fmt.Errorf("replay: unknown synchronization scheme %v", scheme)
	}
}

// sessionErr returns the sticky session failure, if any.
func (l *Live) sessionErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.abortErr
}

// FeedChunk appends bytes to one rank's trace stream. Chunks of one
// rank must arrive in order (the serve layer's sequence numbers
// guarantee it); different ranks may feed concurrently. Decoded events
// enter the replay immediately once the analysis is running.
func (l *Live) FeedChunk(rank int, data []byte) error {
	if rank < 0 || rank >= len(l.ranks) {
		return fmt.Errorf("replay: chunk for rank %d outside world of %d", rank, len(l.ranks))
	}
	lr := l.ranks[rank]
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if err := l.sessionErr(); err != nil {
		return err
	}
	if lr.finished {
		return fmt.Errorf("replay: rank %d stream already finished", rank)
	}
	hadHeader := lr.dec.Header() != nil
	evs, err := lr.dec.Feed(data)
	if err != nil {
		l.fail(err)
		return err
	}
	lr.bytes.Add(int64(len(data)))
	l.m.chunks.Inc()
	l.m.bytes.Add(float64(len(data)))
	if !hadHeader && lr.dec.Header() != nil {
		if err := l.registerHeader(rank, lr, lr.dec.Header()); err != nil {
			l.fail(err)
			return err
		}
	}
	if len(evs) > 0 {
		lr.events.Add(int64(len(evs)))
		l.m.events.Add(float64(len(evs)))
		lr.lastIngest.Store(math.Float64bits(lr.corr.Apply(evs[len(evs)-1].Time)))
		lr.haveIngest.Store(true)
		lr.log.append(evs)
	}
	return nil
}

// registerHeader installs a rank's completed header: its correction
// map enters the incremental sync builder, and when the last header
// lands the analyzer starts sweeping.
func (l *Live) registerHeader(rank int, lr *liveRank, t *trace.Trace) error {
	if t.Loc.Rank != rank {
		return fmt.Errorf("replay: stream for rank %d carries trace of rank %d", rank, t.Loc.Rank)
	}
	corr, err := rankCorrection(t, l.cfg.Scheme)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.builder.Set(rank, corr); err != nil {
		return err
	}
	lr.corr = corr
	lr.haveCorr = true
	l.traces[rank] = t
	l.headers++
	if l.headers == len(l.ranks) {
		return l.startLocked()
	}
	return nil
}

// startLocked launches the parallel replay once every header is in.
// Called with l.mu held.
func (l *Live) startLocked() error {
	corrs, err := l.builder.Corrections()
	if err != nil {
		return err
	}
	vclock.ObserveCorrections(l.rec, l.cfg.Scheme, corrs)
	comms, err := mergeComms(l.traces)
	if err != nil {
		return err
	}
	if err := checkCommCoverage(comms, len(l.traces)); err != nil {
		return err
	}
	a := newAnalyzer(l.traces, corrs, comms, l.cfg.Config)
	// Swap the closed post-mortem logs for the session's open ones and
	// attach the live plumbing: the window sink and the progress
	// frontier (initialized to -Inf — a rank that has not yet swept any
	// event holds every window open).
	for i, lr := range l.ranks {
		a.logs[i] = lr.log
	}
	a.sink = l.sink
	a.progress = make([]atomic.Uint64, len(l.ranks))
	for i := range a.progress {
		a.progress[i].Store(math.Float64bits(math.Inf(-1)))
	}
	l.a = a
	l.started = true
	l.state = "running"
	go func() {
		a.run()
		close(l.runDone)
	}()
	go l.scheduler()
	l.emit(StreamEvent{Type: "state", State: &StateEvent{State: "running"}})
	return nil
}

// FinishRank declares one rank's stream complete. Idempotent. A stream
// that ends mid-header or short of its declared event count fails the
// session, exactly as a truncated file fails a post-mortem load.
func (l *Live) FinishRank(rank int) error {
	if rank < 0 || rank >= len(l.ranks) {
		return fmt.Errorf("replay: finish for rank %d outside world of %d", rank, len(l.ranks))
	}
	lr := l.ranks[rank]
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if lr.finished {
		return nil
	}
	if err := l.sessionErr(); err != nil {
		return err
	}
	if _, err := lr.dec.Finish(); err != nil {
		l.fail(err)
		return err
	}
	lr.finished = true
	lr.log.close()
	return nil
}

// fail records the first fatal session error and aborts the running
// analysis so every worker unwinds.
func (l *Live) fail(err error) {
	l.mu.Lock()
	first := l.abortErr == nil
	if first {
		l.abortErr = err
		l.state = "failed"
		if l.a != nil {
			l.a.abortWith(err)
		}
	}
	l.mu.Unlock()
	if first {
		l.emit(StreamEvent{Type: "state", State: &StateEvent{State: "failed", Error: err.Error()}})
	}
}

// RankLocation reports a rank's decoded location once its stream's
// header has arrived — callers use it to cross-check the uploader's
// claimed (metahost, rank) coordinates against the trace itself.
func (l *Live) RankLocation(rank int) (trace.Location, bool) {
	if rank < 0 || rank >= len(l.ranks) {
		return trace.Location{}, false
	}
	lr := l.ranks[rank]
	lr.mu.Lock()
	defer lr.mu.Unlock()
	h := lr.dec.Header()
	if h == nil {
		return trace.Location{}, false
	}
	return h.Loc, true
}

// Abort cancels the session with the given cause (session timeout,
// client delete, server drain).
func (l *Live) Abort(cause error) {
	if cause == nil {
		cause = context.Canceled
	}
	l.fail(fmt.Errorf("replay: live session aborted: %w", cause))
}

// Finalize closes every rank stream still open, waits for the replay
// to drain, emits the final windows and the summary, and returns the
// analysis Result — byte-identical to Analyze over the same bytes. It
// must be called exactly once; ctx bounds the wait (expiry aborts the
// session).
func (l *Live) Finalize(ctx context.Context) (*Result, error) {
	var ferr error
	for rank := range l.ranks {
		if err := l.FinishRank(rank); err != nil && ferr == nil {
			ferr = err
		}
	}
	l.mu.Lock()
	started := l.started
	emitFail := false
	if !started && l.abortErr == nil {
		l.abortErr = fmt.Errorf("replay: live session finalized before all rank headers arrived (%d of %d)",
			l.headers, len(l.ranks))
		l.state = "failed"
		ferr = l.abortErr
		emitFail = true // fail() has not run for this error, so no event yet
	}
	if ferr == nil {
		ferr = l.abortErr
	}
	l.mu.Unlock()
	if !started {
		if emitFail {
			l.emit(StreamEvent{Type: "state", State: &StateEvent{State: "failed", Error: ferr.Error()}})
		}
		return nil, ferr
	}

	// The workers drain on their own (closed logs), unless the session
	// already failed — then abortWith has woken them. ctx expiry turns
	// into an abort so a stuck finalize cannot leak the analyzer.
	select {
	case <-l.runDone:
	case <-ctx.Done():
		l.Abort(context.Cause(ctx))
		<-l.runDone
	}
	close(l.schedStop)
	<-l.schedDone

	res, err := l.a.result()
	if err != nil {
		l.fail(err)
		return nil, err
	}
	// Final drain: every remaining window is closed now (all sweeps
	// done), then the stream ends with cumulative totals.
	l.drainAndEmit(true)
	totals := l.sink.totals()
	sum := &SummaryEvent{
		WindowsClosed: int64(len(l.closedSet)),
		Messages:      res.Messages,
		Collectives:   res.Collectives,
		Violations:    res.Violations,
	}
	for k, v := range totals {
		sum.Totals = append(sum.Totals, WindowDelta{Metric: k.Metric, Metahost: k.Metahost, Value: v})
	}
	sort.Slice(sum.Totals, func(i, j int) bool {
		if sum.Totals[i].Metric != sum.Totals[j].Metric {
			return sum.Totals[i].Metric < sum.Totals[j].Metric
		}
		return sum.Totals[i].Metahost < sum.Totals[j].Metahost
	})
	l.emit(StreamEvent{Type: "summary", Summary: sum})
	l.mu.Lock()
	l.state = "done"
	l.mu.Unlock()
	l.emit(StreamEvent{Type: "state", State: &StateEvent{State: "done"}})
	return res, nil
}

// scheduler periodically drains the sink and publishes window and
// frontier events until Finalize stops it.
func (l *Live) scheduler() {
	defer close(l.schedDone)
	t := time.NewTicker(l.cfg.EmitEvery)
	defer t.Stop()
	for {
		select {
		case <-l.schedStop:
			return
		case <-t.C:
			l.drainAndEmit(false)
		}
	}
}

// drainAndEmit drains the sink and emits one batch of window events
// plus a frontier event. final=true (from Finalize, after the replay
// drained) closes every touched window unconditionally.
func (l *Live) drainAndEmit(final bool) {
	drained := l.sink.drain()
	progress, ingest, lags := l.frontierState()

	// maxClosed: highest window index whose end the progress frontier
	// has passed.
	maxClosed := int64(math.MinInt64)
	if final || math.IsInf(progress, 1) {
		maxClosed = math.MaxInt64
	} else if !math.IsInf(progress, -1) {
		maxClosed = int64(math.Floor(progress/l.cfg.WindowSec)) - 1
	}

	idxs := make([]int64, 0, len(drained))
	for w := range drained {
		idxs = append(idxs, w)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, w := range idxs {
		deltas := drained[w]
		we := &WindowEvent{
			Index:   w,
			Start:   float64(w) * l.cfg.WindowSec,
			End:     float64(w+1) * l.cfg.WindowSec,
			Closed:  w <= maxClosed,
			Amended: l.closedThrough != math.MinInt64 && w <= l.closedThrough,
		}
		for k, v := range deltas {
			we.Deltas = append(we.Deltas, WindowDelta{Metric: k.Metric, Metahost: k.Metahost, Value: v})
		}
		sort.Slice(we.Deltas, func(i, j int) bool {
			if we.Deltas[i].Metric != we.Deltas[j].Metric {
				return we.Deltas[i].Metric < we.Deltas[j].Metric
			}
			return we.Deltas[i].Metahost < we.Deltas[j].Metahost
		})
		l.emit(StreamEvent{Type: "window", Window: we})
		if we.Closed && !l.closedSet[w] {
			l.closedSet[w] = true
			l.m.windowsClosed.Inc()
		}
	}
	if maxClosed != math.MinInt64 && maxClosed != math.MaxInt64 && maxClosed > l.closedThrough {
		l.closedThrough = maxClosed
	}
	if maxClosed == math.MaxInt64 && len(idxs) > 0 && idxs[len(idxs)-1] > l.closedThrough {
		l.closedThrough = idxs[len(idxs)-1]
	}

	fe := &FrontierEvent{ClosedThrough: l.closedThrough, Ranks: lags}
	if !math.IsInf(progress, 0) && !math.IsNaN(progress) {
		fe.Progress, fe.ProgressValid = progress, true
		l.m.frontier.Set(progress)
	}
	if !math.IsInf(ingest, 0) && !math.IsNaN(ingest) {
		fe.Ingest, fe.IngestValid = ingest, true
	}
	l.emit(StreamEvent{Type: "frontier", Frontier: fe})
	if l.fw != nil {
		l.fw.Emit(flight.Mark, l.cfg.FlightJob, l.fn, int64(len(idxs)), l.closedThrough)
	}
}

// frontierState computes the progress and ingest frontiers and the
// per-rank lag vector.
func (l *Live) frontierState() (progress, ingest float64, lags []RankLag) {
	l.mu.Lock()
	a := l.a
	traces := append([]*trace.Trace(nil), l.traces...)
	l.mu.Unlock()
	progress, ingest = math.Inf(1), math.Inf(1)
	lags = make([]RankLag, len(l.ranks))
	for i, lr := range l.ranks {
		lag := RankLag{
			Rank:   i,
			Events: lr.events.Load(),
			Bytes:  lr.bytes.Load(),
		}
		if t := traces[i]; t != nil {
			lag.Metahost = t.Loc.MetahostName
		}
		if lr.haveIngest.Load() {
			v := math.Float64frombits(lr.lastIngest.Load())
			lag.Ingested, lag.HasTime = v, true
			if v < ingest {
				ingest = v
			}
		} else {
			ingest = math.Inf(-1) // a rank with nothing ingested pins the frontier
		}
		lr.mu.Lock()
		lag.Finished = lr.finished
		lr.mu.Unlock()
		if a != nil {
			if p := math.Float64frombits(a.progress[i].Load()); p < progress {
				progress = p
			}
		} else {
			progress = math.Inf(-1)
		}
		lags[i] = lag
	}
	return progress, ingest, lags
}

// emit assigns the next sequence number and delivers the event.
func (l *Live) emit(ev StreamEvent) {
	l.emitMu.Lock()
	l.seq++
	ev.Seq = l.seq
	if l.cfg.OnEvent != nil {
		l.cfg.OnEvent(ev)
	}
	l.emitMu.Unlock()
	l.m.emits.With(ev.Type).Inc()
}

// Resident reports one rank's bounded-memory window: the events
// currently held in its log (ingested but not yet swept past and
// released) and the session-lifetime peak. Feeders running ahead of
// the sweep use it to throttle against LiveConfig.WindowBudget.
func (l *Live) Resident(rank int) (resident, peak int) {
	if rank < 0 || rank >= len(l.ranks) {
		return 0, 0
	}
	return l.ranks[rank].log.residentEvents()
}

// LiveStatus is a point-in-time view of a session for vitals and the
// session GET endpoint.
type LiveStatus struct {
	State          string `json:"state"`
	Ranks          int    `json:"ranks"`
	Headers        int    `json:"headers"`
	RanksFinished  int    `json:"ranks_finished"`
	BytesIngested  int64  `json:"bytes_ingested"`
	EventsIngested int64  `json:"events_ingested"`
	// ResidentEvents sums the ranks' currently held (ingested, not yet
	// swept-and-released) events; MaxResidentEvents sums their peaks.
	ResidentEvents    int `json:"resident_events"`
	MaxResidentEvents int `json:"max_resident_events"`
}

// Status reports the session's current state.
func (l *Live) Status() LiveStatus {
	l.mu.Lock()
	st := LiveStatus{State: l.state, Ranks: len(l.ranks), Headers: l.headers}
	l.mu.Unlock()
	for _, lr := range l.ranks {
		st.BytesIngested += lr.bytes.Load()
		st.EventsIngested += lr.events.Load()
		res, peak := lr.log.residentEvents()
		st.ResidentEvents += res
		st.MaxResidentEvents += peak
		lr.mu.Lock()
		if lr.finished {
			st.RanksFinished++
		}
		lr.mu.Unlock()
	}
	return st
}

// streamMetrics pre-registers the live-session metric families.
type streamMetrics struct {
	chunks, bytes, events *obs.Series
	windowsClosed         *obs.Series
	frontier              *obs.Series
	emits                 *obs.Family
}

func newStreamMetrics(rec *obs.Recorder) *streamMetrics {
	r := rec.Reg
	return &streamMetrics{
		chunks: r.Counter("metascope_stream_chunks_total",
			"trace chunks ingested by live sessions").With(),
		bytes: r.Counter("metascope_stream_bytes_total",
			"trace bytes ingested by live sessions").With(),
		events: r.Counter("metascope_stream_events_total",
			"trace events decoded by live sessions").With(),
		windowsClosed: r.Counter("metascope_stream_windows_closed_total",
			"severity windows closed by live sessions").With(),
		frontier: r.Gauge("metascope_stream_frontier_seconds",
			"progress frontier (min corrected sweep time) of the last live session").With(),
		emits: r.Counter("metascope_stream_emits_total",
			"stream events emitted by live sessions", "type"),
	}
}
