package replay

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"metascope/internal/pattern"
	"metascope/internal/trace"
	"metascope/internal/vclock"
)

// liveTraces builds a 3-rank, 2-metahost experiment exercising every
// streamed severity source: a cross-metahost Late Sender (rank 0 on A
// sends late to rank 1 on B), a rendezvous Late Receiver (rank 2's
// large send blocks on rank 0's late receive), message volume on both
// sides of the metahost boundary, and a barrier rank 1 enters late.
func liveTraces() []*trace.Trace {
	world := trace.CommDef{ID: 0, Ranks: []int32{0, 1, 2}}
	big := int64(1 << 20) // over the eager limit: rendezvous path
	t0 := synth(0, 0, []trace.Event{
		enter(0, 0),
		enter(4, 1), send(4, 1, 7, 100), exit(4.5, 1),
		enter(6, 2), recv(8, 2, 9, big), exit(8, 2),
		enter(8.5, 3), collExit(9.5, trace.CollBarrier, -1), exit(9.5, 3),
		exit(12, 0),
	}, world)
	t1 := synth(1, 1, []trace.Event{
		enter(0, 0),
		enter(1, 2), recv(5, 0, 7, 100), exit(5, 2),
		enter(9, 3), collExit(9.5, trace.CollBarrier, -1), exit(9.5, 3),
		exit(12, 0),
	}, world)
	t2 := synth(2, 1, []trace.Event{
		enter(0, 0),
		enter(2, 1), send(2, 0, 9, big), exit(8, 1),
		enter(8.5, 3), collExit(9.5, trace.CollBarrier, -1), exit(9.5, 3),
		exit(12, 0),
	}, world)
	return []*trace.Trace{t0, t1, t2}
}

func encodeTraces(t *testing.T, traces []*trace.Trace) [][]byte {
	t.Helper()
	out := make([][]byte, len(traces))
	for i, tr := range traces {
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.Bytes()
	}
	return out
}

// artifacts renders the result's report and profile to bytes — the
// byte-determinism unit of comparison.
func artifacts(t *testing.T, res *Result) (report, prof []byte) {
	t.Helper()
	var rb, pb bytes.Buffer
	if err := res.Report.Write(&rb); err != nil {
		t.Fatal(err)
	}
	if err := res.Profile.WriteJSON(&pb); err != nil {
		t.Fatal(err)
	}
	return rb.Bytes(), pb.Bytes()
}

// runLive streams the encoded traces through a live session using the
// given chunking plan and returns the result plus the event stream.
// plan yields (rank, chunk) pairs; per-rank order must be preserved.
type feedStep struct {
	rank  int
	chunk []byte
}

func runLive(t *testing.T, cfg Config, n int, plan []feedStep) (*Result, []StreamEvent) {
	t.Helper()
	var got []StreamEvent
	l, err := NewLive(LiveConfig{
		Config:    cfg,
		Ranks:     n,
		WindowSec: 2,
		EmitEvery: time.Millisecond,
		// OnEvent calls are serialized by the engine, and Finalize
		// happens-after the last of them — got is safe to read below.
		OnEvent: func(ev StreamEvent) { got = append(got, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range plan {
		if err := l.FeedChunk(st.rank, st.chunk); err != nil {
			t.Fatalf("feed rank %d: %v", st.rank, err)
		}
	}
	res, err := l.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res, got
}

// chunkPlan slices each rank's bytes into size-byte chunks and
// interleaves ranks round-robin.
func chunkPlan(blobs [][]byte, size int) []feedStep {
	var plan []feedStep
	offs := make([]int, len(blobs))
	for {
		progressed := false
		for r, b := range blobs {
			if offs[r] >= len(b) {
				continue
			}
			end := offs[r] + size
			if end > len(b) {
				end = len(b)
			}
			plan = append(plan, feedStep{r, b[offs[r]:end]})
			offs[r] = end
			progressed = true
		}
		if !progressed {
			return plan
		}
	}
}

func TestLiveMatchesPostMortem(t *testing.T) {
	cfg := Config{Scheme: vclock.FlatSingle, Title: "live determinism"}
	traces := liveTraces()
	blobs := encodeTraces(t, traces)
	post, err := Analyze(liveTraces(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantReport, wantProf := artifacts(t, post)

	plans := map[string][]feedStep{
		"round-robin-small": chunkPlan(blobs, 17),
		"whole-files":       {{0, blobs[0]}, {1, blobs[1]}, {2, blobs[2]}},
		"reverse-ranks":     {{2, blobs[2]}, {1, blobs[1]}, {0, blobs[0]}},
	}
	// Seeded random chunk sizes with random rank interleaving.
	rng := rand.New(rand.NewSource(11))
	var random []feedStep
	offs := make([]int, len(blobs))
	for {
		live := make([]int, 0, len(blobs))
		for r := range blobs {
			if offs[r] < len(blobs[r]) {
				live = append(live, r)
			}
		}
		if len(live) == 0 {
			break
		}
		r := live[rng.Intn(len(live))]
		end := offs[r] + 1 + rng.Intn(40)
		if end > len(blobs[r]) {
			end = len(blobs[r])
		}
		random = append(random, feedStep{r, blobs[r][offs[r]:end]})
		offs[r] = end
	}
	plans["random"] = random

	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			res, _ := runLive(t, cfg, len(blobs), plan)
			gotReport, gotProf := artifacts(t, res)
			if !bytes.Equal(gotReport, wantReport) {
				t.Errorf("report bytes differ from post-mortem (%d vs %d bytes)", len(gotReport), len(wantReport))
			}
			if !bytes.Equal(gotProf, wantProf) {
				t.Errorf("profile bytes differ from post-mortem (%d vs %d bytes)", len(gotProf), len(wantProf))
			}
			if res.Messages != post.Messages || res.Collectives != post.Collectives || res.Violations != post.Violations {
				t.Errorf("counts differ: live %d/%d/%d post %d/%d/%d",
					res.Messages, res.Collectives, res.Violations,
					post.Messages, post.Collectives, post.Violations)
			}
		})
	}
}

func TestLiveStreamDeltasSumToCube(t *testing.T) {
	cfg := Config{Scheme: vclock.FlatSingle, Title: "live deltas"}
	traces := liveTraces()
	blobs := encodeTraces(t, traces)
	res, events := runLive(t, cfg, len(blobs), chunkPlan(blobs, 23))

	// Cumulative window deltas must equal the summary totals exactly
	// (both are sums of the same deposits)...
	sums := map[deltaKey]float64{}
	var summary *SummaryEvent
	for _, ev := range events {
		if ev.Window != nil {
			for _, d := range ev.Window.Deltas {
				sums[deltaKey{d.Metric, d.Metahost}] += d.Value
			}
		}
		if ev.Summary != nil {
			summary = ev.Summary
		}
	}
	if summary == nil {
		t.Fatal("no summary event emitted")
	}
	if len(summary.Totals) == 0 {
		t.Fatal("summary has no totals")
	}
	for _, tot := range summary.Totals {
		got := sums[deltaKey{tot.Metric, tot.Metahost}]
		if math.Abs(got-tot.Value) > 1e-9*math.Max(1, math.Abs(tot.Value)) {
			t.Errorf("%s@mh%d: window deltas sum %g, summary %g", tot.Metric, tot.Metahost, got, tot.Value)
		}
	}

	// ...and wait-state family totals must match the cube's
	// subtree-inclusive totals summed over the metahost's ranks.
	mhOf := map[int]int{}
	for _, tr := range traces {
		mhOf[tr.Loc.Rank] = tr.Loc.Metahost
	}
	for _, fam := range []pattern.ID{pattern.LateSender, pattern.LateReceiver, pattern.WaitBarrier, pattern.BarrierCompletion} {
		key := fam.MetricKey()
		cubeByMH := map[int]float64{}
		for rank, mh := range mhOf {
			cubeByMH[mh] += res.Report.RankMetricTotal(key, rank)
		}
		for mh, want := range cubeByMH {
			got := sums[deltaKey{key, mh}]
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Errorf("%s@mh%d: streamed %g, cube subtree %g", key, mh, got, want)
			}
		}
	}
	if sums[deltaKey{pattern.LateSender.MetricKey(), 1}] <= 0 {
		t.Error("expected positive late-sender mass at metahost 1")
	}
	if sums[deltaKey{pattern.LateReceiver.MetricKey(), 1}] <= 0 {
		t.Error("expected positive late-receiver mass at metahost 1")
	}
}

func TestLiveStreamEventShape(t *testing.T) {
	cfg := Config{Scheme: vclock.FlatSingle, Title: "live shape"}
	blobs := encodeTraces(t, liveTraces())
	_, events := runLive(t, cfg, len(blobs), chunkPlan(blobs, 64))

	var lastSeq uint64
	var states []string
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("sequence not strictly increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		set := 0
		for _, p := range []bool{ev.Window != nil, ev.Frontier != nil, ev.State != nil, ev.Summary != nil} {
			if p {
				set++
			}
		}
		if set != 1 {
			t.Fatalf("event %d has %d payloads", ev.Seq, set)
		}
		if ev.State != nil {
			states = append(states, ev.State.State)
		}
	}
	want := []string{"open", "running", "done"}
	if strings.Join(states, ",") != strings.Join(want, ",") {
		t.Fatalf("state transitions %v, want %v", states, want)
	}
	if events[len(events)-1].State == nil || events[len(events)-1].State.State != "done" {
		t.Fatal("stream must end with the done state event")
	}
}

func TestLiveRejectsBadStreams(t *testing.T) {
	cfg := Config{Scheme: vclock.FlatSingle}
	blobs := encodeTraces(t, liveTraces())

	t.Run("corrupt chunk fails session", func(t *testing.T) {
		l, err := NewLive(LiveConfig{Config: cfg, Ranks: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.FeedChunk(0, []byte("XSCP garbage")); err == nil {
			t.Fatal("corrupt magic accepted")
		}
		// The failure is sticky for the whole session.
		if err := l.FeedChunk(1, blobs[1]); err == nil {
			t.Fatal("feed after session failure accepted")
		}
		if st := l.Status(); st.State != "failed" {
			t.Fatalf("state %q, want failed", st.State)
		}
	})

	t.Run("rank mismatch", func(t *testing.T) {
		l, err := NewLive(LiveConfig{Config: cfg, Ranks: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.FeedChunk(0, blobs[1]); err == nil || !strings.Contains(err.Error(), "carries trace of rank") {
			t.Fatalf("err = %v, want rank-mismatch", err)
		}
	})

	t.Run("finalize before headers", func(t *testing.T) {
		l, err := NewLive(LiveConfig{Config: cfg, Ranks: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.FeedChunk(0, blobs[0][:8]); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Finalize(context.Background()); err == nil {
			t.Fatal("finalize with incomplete streams succeeded")
		}
	})

	t.Run("out of range", func(t *testing.T) {
		l, err := NewLive(LiveConfig{Config: cfg, Ranks: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.FeedChunk(3, blobs[0]); err == nil {
			t.Fatal("rank 3 accepted in world of 3")
		}
		if err := l.FinishRank(-1); err == nil {
			t.Fatal("finish of rank -1 accepted")
		}
	})
}

func TestLiveAbort(t *testing.T) {
	cfg := Config{Scheme: vclock.FlatSingle}
	blobs := encodeTraces(t, liveTraces())
	l, err := NewLive(LiveConfig{Config: cfg, Ranks: 3, EmitEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Start the analysis (all headers in) but leave the streams open:
	// the workers are blocked on their cursors.
	for r, b := range blobs {
		if err := l.FeedChunk(r, b[:len(b)-4]); err != nil {
			t.Fatal(err)
		}
	}
	l.Abort(context.Canceled)
	if _, err := l.Finalize(context.Background()); err == nil {
		t.Fatal("finalize of aborted session succeeded")
	}
	if st := l.Status(); st.State != "failed" {
		t.Fatalf("state %q, want failed", st.State)
	}
}
