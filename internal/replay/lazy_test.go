package replay

import (
	"bytes"
	"context"
	"testing"
	"time"

	"metascope/internal/trace"
	"metascope/internal/vclock"
)

// bigPingPong builds a 2-rank message storm large enough to span many
// v2 blocks per rank (6 events per message, default block = 4096
// events), with every receive posted early so the analysis deposits
// Late Sender mass throughout.
func bigPingPong(nmsg int) []*trace.Trace {
	ev0 := []trace.Event{enter(0, 0)}
	ev1 := []trace.Event{enter(0, 0)}
	tt := 1.0
	for i := 0; i < nmsg; i++ {
		ev1 = append(ev1, enter(tt, 2))
		ev0 = append(ev0, enter(tt+0.3, 1), send(tt+0.3, 1, int32(i%7), 128), exit(tt+0.4, 1))
		ev1 = append(ev1, recv(tt+0.5, 0, int32(i%7), 128), exit(tt+0.5, 2))
		tt += 1.0
	}
	ev0 = append(ev0, exit(tt+1, 0))
	ev1 = append(ev1, exit(tt+1, 0))
	return []*trace.Trace{synth(0, 0, ev0), synth(1, 0, ev1)}
}

// encodeV2Bytes renders a trace in the v2 columnar encoding.
func encodeV2Bytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.EncodeFormat(&buf, trace.FormatV2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// lazyArchiveOf re-encodes the traces as v2 images and opens them
// header-only, the way LoadArchiveLazy does from disk.
func lazyArchiveOf(t *testing.T, traces []*trace.Trace) *LazyArchive {
	t.Helper()
	ar := &LazyArchive{
		Traces:  make([]*trace.Trace, len(traces)),
		readers: make([]*trace.BlockReader, len(traces)),
	}
	for i, tr := range traces {
		r, err := trace.NewBlockReader(encodeV2Bytes(t, tr), nil)
		if err != nil {
			t.Fatal(err)
		}
		ar.Traces[i] = r.Trace()
		ar.readers[i] = r
	}
	return ar
}

// TestLazyRankLogBoundedSweep drives a sweep cursor over a lazy
// multi-block rank log with frontier releases and checks that (a) every
// event decodes identically to the materialized trace, (b) the peak
// resident window stays far below the trace size, and (c) swept blocks
// are actually freed.
func TestLazyRankLogBoundedSweep(t *testing.T) {
	tr := bigPingPong(4000)[1] // 4000*3+2 events, several 4096-event blocks
	r, err := trace.NewBlockReader(encodeV2Bytes(t, tr), nil)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := newLazyRankLog(r)
	if err != nil {
		t.Fatal(err)
	}
	sc := newSweepCursor(lg)
	for i := 0; i < len(tr.Events); i++ {
		sc.release(i)
		ev := sc.ev(i)
		if ev == nil {
			t.Fatalf("event %d: %v", i, sc.err)
		}
		if *ev != tr.Events[i] {
			t.Fatalf("event %d decoded as %+v, want %+v", i, *ev, tr.Events[i])
		}
	}
	resident, peak := lg.residentEvents()
	if n := len(tr.Events); peak >= n {
		t.Errorf("peak resident %d events, trace has %d: nothing was released", peak, n)
	}
	if peak > 3*lg.stride {
		t.Errorf("peak resident %d events exceeds 3 blocks (%d)", peak, 3*lg.stride)
	}
	if resident > 2*lg.stride {
		t.Errorf("%d events still resident after full sweep", resident)
	}
	for k := 0; k < (len(tr.Events)-1)/lg.stride-1; k++ {
		if lg.blocks[k] != nil {
			t.Errorf("block %d not freed after the sweep passed it", k)
		}
	}
	if first, last, ok := lg.bounds(); !ok || first != tr.Events[0].Time || last != tr.Events[len(tr.Events)-1].Time {
		t.Errorf("bounds = (%g, %g, %v), want (%g, %g, true)",
			first, last, ok, tr.Events[0].Time, tr.Events[len(tr.Events)-1].Time)
	}
}

// TestAnalyzeLazyMatchesMaterialized: a full analysis through the lazy
// block cursor must render byte-identical artifacts to the materialized
// path on a many-block workload.
func TestAnalyzeLazyMatchesMaterialized(t *testing.T) {
	traces := bigPingPong(3000)
	cfg := Config{Scheme: vclock.FlatSingle, Title: "lazy-big"}
	want, err := Analyze(traces, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzeLazy(lazyArchiveOf(t, traces), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wb, gb bytes.Buffer
	if err := want.Report.Write(&wb); err != nil {
		t.Fatal(err)
	}
	if err := got.Report.Write(&gb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Error("lazy analysis report differs from materialized")
	}
	if want.Messages != got.Messages {
		t.Errorf("messages %d vs %d", got.Messages, want.Messages)
	}
}

// TestAnalyzeLazyCorruptBlockSurfacesError: corruption past the header
// is invisible at load time (header-only parse) and must surface as an
// analysis error, not a panic or silent truncation.
func TestAnalyzeLazyCorruptBlockSurfacesError(t *testing.T) {
	traces := bigPingPong(3000)
	img := encodeV2Bytes(t, traces[1])
	img = img[:len(img)-200] // tear a little off the final block: too small for the open-time size check
	r, err := trace.NewBlockReader(img, nil)
	if err != nil {
		t.Fatalf("header-only open should succeed on a torn tail: %v", err)
	}
	ar := lazyArchiveOf(t, traces)
	ar.Traces[1] = r.Trace()
	ar.readers[1] = r
	if _, err := AnalyzeLazy(ar, Config{Scheme: vclock.FlatSingle, Title: "lazy-corrupt"}); err == nil {
		t.Fatal("analysis of a torn v2 image succeeded")
	}
	// The same torn image must also fail a post-mortem decode.
	if _, err := trace.DecodeBytes(img); err == nil {
		t.Fatal("post-mortem decode of the torn image succeeded")
	}
}

// TestLiveBoundedResident: a feeder that throttles on Resident() against
// WindowBudget must complete with a peak resident window far below the
// full event count — the out-of-core guarantee for archives larger than
// RAM.
func TestLiveBoundedResident(t *testing.T) {
	traces := bigPingPong(4000)
	blobs := make([][]byte, len(traces))
	for i, tr := range traces {
		blobs[i] = encodeV2Bytes(t, tr)
	}
	const budget = 6000 // events per rank; each rank holds ~12k
	l, err := NewLive(LiveConfig{
		Config:       Config{Scheme: vclock.FlatSingle, Title: "live-bounded"},
		Ranks:        len(traces),
		WindowSec:    5,
		EmitEvery:    time.Millisecond,
		WindowBudget: budget,
		OnEvent:      func(StreamEvent) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	offs := make([]int, len(blobs))
	for {
		progressed := false
		for r := range blobs {
			if offs[r] >= len(blobs[r]) {
				continue
			}
			if res, _ := l.Resident(r); res > budget {
				continue // throttle: let the sweep drain this rank first
			}
			end := offs[r] + 4096
			if end > len(blobs[r]) {
				end = len(blobs[r])
			}
			if err := l.FeedChunk(r, blobs[r][offs[r]:end]); err != nil {
				t.Fatalf("feed rank %d: %v", r, err)
			}
			offs[r] = end
			progressed = true
		}
		done := true
		for r := range blobs {
			if offs[r] < len(blobs[r]) {
				done = false
			}
		}
		if done {
			break
		}
		if !progressed {
			time.Sleep(time.Millisecond) // all ranks over budget: wait for the sweep
		}
	}
	res, err := l.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := 4000; res.Messages != want {
		t.Errorf("analyzed %d messages, fed %d", res.Messages, want)
	}
	peakSum := 0
	for r := range blobs {
		_, peak := l.Resident(r)
		if peak >= len(traces[r].Events) {
			t.Errorf("rank %d peak resident %d >= full trace %d: window never released",
				r, peak, len(traces[r].Events))
		}
		peakSum += peak
	}
	st := l.Status()
	if st.MaxResidentEvents != peakSum {
		t.Errorf("status MaxResidentEvents %d, sum of rank peaks %d", st.MaxResidentEvents, peakSum)
	}
}
