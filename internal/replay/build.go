package replay

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"metascope/internal/cube"
	"metascope/internal/obs/flight"
	"metascope/internal/pattern"
	"metascope/internal/phase"
	"metascope/internal/profile"
	"metascope/internal/trace"
)

// result finalizes the per-rank results into the analysis report:
// the deterministic wrong-order post-pass, application of remote
// (sender-side) contributions, and assembly of the severity cube.
func (a *analyzer) result() (*Result, error) {
	res := &Result{
		Corrections:         a.corrs,
		ReplayBytes:         make([]int64, len(a.results)),
		ReplayExternalBytes: make([]int64, len(a.results)),
		CommMatrix:          make(map[[2]int]CommVolume),
		MetahostNames:       make(map[int]string),
	}
	for _, t := range a.traces {
		res.MetahostNames[t.Loc.Metahost] = t.Loc.MetahostName
	}
	for i, rr := range a.results {
		if rr.err != nil {
			return nil, rr.err
		}
		res.Violations += rr.violations
		res.Repairs += rr.repairs
		res.Messages += rr.messages
		res.Collectives += rr.colls
		res.ReplayBytes[i] = rr.replayBytes
		res.ReplayExternalBytes[i] = rr.replayExternal
		for k, v := range rr.commMatrix {
			cell := res.CommMatrix[k]
			cell.Messages += v.Messages
			cell.Bytes += v.Bytes
			res.CommMatrix[k] = cell
		}
	}

	// The combined time-resolved profile. The interval axis is derived
	// here, not before the replay: a live session only knows the
	// corrected run span once every rank's stream has finished, and
	// deriving it at the same point in both modes is what keeps the
	// artifacts byte-identical. Each rank's deferred sample log is
	// replayed into a per-rank accumulator (reproducing the exact Add
	// sequence the worker performed) and merged in rank order, then the
	// post-passes below feed the remaining point-to-point wait series —
	// so the bucket sums are reproducible bit-for-bit regardless of
	// goroutine scheduling or chunking.
	profCfg := profileConfig(a.logs, a.corr, a.cfg)
	prof := profile.NewAccumulator(profCfg)
	for _, t := range a.traces {
		prof.SetMetahostName(t.Loc.Metahost, t.Loc.MetahostName)
	}
	for p := pattern.ID(0); p < pattern.NumPatterns; p++ {
		prof.SetMeta(p.MetricKey(), profile.SeriesMeta{Name: p.String(), Unit: "sec"})
	}
	prof.SetMeta(profile.KeyBytesIntra, profile.SeriesMeta{Name: "Intra-metahost message volume", Unit: "bytes"})
	prof.SetMeta(profile.KeyBytesWide, profile.SeriesMeta{Name: "Wide-area message volume", Unit: "bytes"})
	for _, rr := range a.results {
		rp := profile.NewAccumulator(profCfg)
		for _, s := range rr.profLog {
			rp.Add(s.key, s.start, s.dur, s.val)
		}
		prof.Merge(rp)
	}

	// Wrong-order post-pass: a Late Sender instance is reclassified as
	// Messages in Wrong Order if the receiver later consumes a message
	// that was sent earlier than the matched one and before the receive
	// was posted — receiving in send order would have shortened the
	// wait. A suffix-minimum over the per-receiver log decides this in
	// linear time and independently of goroutine scheduling. The final
	// classification is also when the late-sender family's profile
	// series are fed: only here is the pattern identity of an instance
	// known.
	//
	// The pass runs per rank in parallel: each rank's receive log only
	// touches that rank's own call-path accumulators, and the profile
	// deposits target keys that carry the rank — so per-rank profile
	// accumulators merged in rank order reproduce the sequential
	// addition sequence bit-for-bit (Merge folds whole series onto
	// fresh, zero-valued destinations; 0+x is exact). The sequential
	// loop is kept behind Config.SequentialPostPass as the reference
	// the determinism tests compare against.
	if a.cfg.SequentialPostPass || len(a.results) <= 1 {
		if pw := a.fl.Writer(flight.PostPassActor); pw != nil {
			pw.Emit(flight.SpanBegin, a.flJob, a.fn.postpass, 0, 0)
			defer pw.Emit(flight.SpanEnd, a.flJob, a.fn.postpass, 0, 0)
		}
		for _, rr := range a.results {
			a.postPassRank(rr, prof)
		}
	} else {
		rankProfs := make([]*profile.Accumulator, len(a.results))
		var wg sync.WaitGroup
		for idx, rr := range a.results {
			wg.Add(1)
			go func(idx int, rr *rankResult) {
				defer wg.Done()
				if fw := a.fl.Writer(int32(rr.rank)); fw != nil {
					fw.Emit(flight.SpanBegin, a.flJob, a.fn.postpass, 0, 0)
					defer fw.Emit(flight.SpanEnd, a.flJob, a.fn.postpass, 0, 0)
				}
				rp := profile.NewAccumulator(profCfg)
				a.postPassRank(rr, rp)
				rankProfs[idx] = rp
			}(idx, rr)
		}
		wg.Wait()
		if pw := a.fl.Writer(flight.PostPassActor); pw != nil {
			pw.Emit(flight.SpanBegin, a.flJob, a.fn.postmerge, 0, 0)
			defer pw.Emit(flight.SpanEnd, a.flJob, a.fn.postmerge, 0, 0)
		}
		for _, rp := range rankProfs {
			prof.Merge(rp)
		}
	}

	// Sender-side severities detected remotely (Late Receiver). The
	// slice was appended by racing workers, so its order depends on
	// scheduling — and in a live session also on chunk arrival. Sorting
	// before the floating-point accumulation below makes the addition
	// order, and therefore the cube bytes, a pure function of the trace
	// contents.
	sort.SliceStable(a.remote, func(i, j int) bool {
		x, y := a.remote[i], a.remote[j]
		if x.rank != y.rank {
			return x.rank < y.rank
		}
		if x.cp != y.cp {
			return x.cp < y.cp
		}
		if x.pat != y.pat {
			return x.pat < y.pat
		}
		if x.mhA != y.mhA {
			return x.mhA < y.mhA
		}
		if x.mhB != y.mhB {
			return x.mhB < y.mhB
		}
		return x.val < y.val
	})
	for _, rc := range a.remote {
		acc := &a.results[rc.rank].acc[rc.cp]
		acc.waits[rc.pat] += rc.val
		if rc.isGrid {
			acc.addPair(rc.pat, rc.mhA, rc.mhB, rc.val)
		}
	}

	res.Profile = prof.Snapshot(a.cfg.Title)

	// Phase detection and the per-phase severity fold. Detection reads
	// the per-rank op logs (pure functions of the corrected traces);
	// the fold then replays every rank's deferred sample logs — sweep
	// deposits first, post-pass deposits second, each rank-major —
	// strictly sequentially. Unlike the bucketed profile above there is
	// no per-rank merge step: the fold is cheap (one map update per
	// sample), and a single fixed addition order makes the artifact
	// byte-identical across post-mortem, lazy, and streamed analysis
	// and any GOMAXPROCS.
	opLogs := make([][]phase.Op, len(a.results))
	for i, rr := range a.results {
		opLogs[i] = rr.opLog
	}
	pacc := phase.NewAccumulator(phase.Detect(opLogs), len(a.results))
	for mh, name := range res.MetahostNames {
		pacc.SetMetahostName(mh, name)
	}
	for _, rr := range a.results {
		for _, s := range rr.profLog {
			pacc.Add(s.key.Metric, s.key.Metahost, s.start, s.val)
		}
	}
	for _, rr := range a.results {
		for _, s := range rr.postLog {
			pacc.Add(s.key.Metric, s.key.Metahost, s.start, s.val)
		}
	}
	res.Phases = pacc.Snapshot(a.cfg.Title)

	res.Report = a.buildReport()
	res.Report.Profile = res.Profile
	if err := res.Report.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// postPassRank classifies one rank's receive log — the suffix-minimum
// wrong-order test — updating the rank's own call-path accumulators
// and depositing the late-sender-family profile samples into dst. The
// deposits are in receive order and every key carries this rank, so
// running ranks concurrently into per-rank accumulators and merging in
// rank order equals the sequential interleave exactly.
func (a *analyzer) postPassRank(rr *rankResult, dst *profile.Accumulator) {
	myMH := a.traces[rr.rank].Loc.Metahost
	n := len(rr.recvLog)
	minFuture := make([]float64, n+1)
	minFuture[n] = math.Inf(1)
	for i := n - 1; i >= 0; i-- {
		minFuture[i] = math.Min(minFuture[i+1], rr.recvLog[i].sendEvent)
	}
	for i, ri := range rr.recvLog {
		if ri.lsWait <= 0 {
			continue
		}
		pat := pattern.LateSender
		switch {
		case ri.grid:
			pat = pattern.GridLateSender
			rr.acc[ri.cp].addPair(pat, myMH, ri.srcMH, ri.lsWait)
		case pattern.WrongOrderCandidate(ri.lsWait, ri.sendEvent, minFuture[i+1], ri.recvEnter):
			pat = pattern.WrongOrder
		}
		rr.acc[ri.cp].waits[pat] += ri.lsWait
		s := profSample{
			key:   profile.Key{Metric: pat.MetricKey(), Metahost: myMH, Rank: rr.rank},
			start: ri.recvEnter, dur: ri.lsWait, val: ri.lsWait,
		}
		dst.Add(s.key, s.start, s.dur, s.val)
		// Deferred for the per-phase fold: only here is the instance's
		// final pattern identity known.
		rr.postLog = append(rr.postLog, s)
	}
}

// metricSlot caches the report indices of all metrics.
type metricSlot struct {
	time, execution, mpi, comm, p2p, coll, sync, visits int
	bytesSent, bytesRecv                                int
	pat                                                 [pattern.NumPatterns]int
}

func slots(r *cube.Report) metricSlot {
	var s metricSlot
	s.time = r.MetricIndex(pattern.KeyTime)
	s.execution = r.MetricIndex(pattern.KeyExecution)
	s.mpi = r.MetricIndex(pattern.KeyMPI)
	s.comm = r.MetricIndex(pattern.KeyComm)
	s.p2p = r.MetricIndex(pattern.KeyP2P)
	s.coll = r.MetricIndex(pattern.KeyColl)
	s.sync = r.MetricIndex(pattern.KeySync)
	s.visits = r.MetricIndex(pattern.KeyVisits)
	s.bytesSent = r.MetricIndex(pattern.KeyBytesSent)
	s.bytesRecv = r.MetricIndex(pattern.KeyBytesRecv)
	for p := pattern.ID(0); p < pattern.NumPatterns; p++ {
		s.pat[p] = r.MetricIndex(p.MetricKey())
	}
	return s
}

// buildReport assembles the cube: metric dimension from the pattern
// catalogue, call dimension from the union of the per-rank call-path
// trees, system dimension from the trace locations.
//
// Severities are stored exclusively along the metric tree:
//
//	Execution: exclusive time of user call paths,
//	MPI:       exclusive time of MPI_Init-class calls,
//	P2P/Collective/Synchronization: call time minus the wait states
//	           detected inside it,
//	patterns:  the wait states themselves (plain, grid, and wrong-order
//	           variants disjoint by construction).
//
// Inclusive aggregation along the metric tree then yields exactly the
// totals shown in the paper's displays: "Time" is total execution
// time, "MPI" the full MPI time, "Late Sender" all late-sender waiting
// including grid and wrong-order instances.
func (a *analyzer) buildReport() *cube.Report {
	locs := make([]cube.Loc, len(a.traces))
	for r, t := range a.traces {
		locs[r] = cube.Loc{
			Rank:         t.Loc.Rank,
			Metahost:     t.Loc.Metahost,
			MetahostName: t.Loc.MetahostName,
			Node:         t.Loc.Node,
		}
	}
	rep := cube.New(a.cfg.Title, cube.FromMetricDefs(pattern.MetricTree()), locs)
	ms := slots(rep)

	// Per-metahost-pair specializations of the grid metrics (§6 future
	// work): one child metric per pair that actually occurred, created
	// lazily in deterministic (pattern, pair) order.
	mhName := make(map[int]string)
	for _, t := range a.traces {
		mhName[t.Loc.Metahost] = t.Loc.MetahostName
	}
	pairSet := make(map[pairKey]bool)
	for _, rr := range a.results {
		for _, acc := range rr.acc {
			for pk := range acc.pairs {
				pairSet[pk] = true
			}
		}
	}
	pairKeys := make([]pairKey, 0, len(pairSet))
	for pk := range pairSet {
		pairKeys = append(pairKeys, pk)
	}
	sort.Slice(pairKeys, func(i, j int) bool {
		if pairKeys[i].pat != pairKeys[j].pat {
			return pairKeys[i].pat < pairKeys[j].pat
		}
		if pairKeys[i].a != pairKeys[j].a {
			return pairKeys[i].a < pairKeys[j].a
		}
		return pairKeys[i].b < pairKeys[j].b
	})
	pairMetric := make(map[pairKey]int, len(pairKeys))
	for _, pk := range pairKeys {
		parent := rep.MetricIndex(pk.pat.MetricKey())
		nameA, nameB := mhName[pk.a], mhName[pk.b]
		pairMetric[pk] = rep.AddMetric(cube.Metric{
			Key:    fmt.Sprintf("%s.pair.%d-%d", pk.pat.MetricKey(), pk.a, pk.b),
			Name:   fmt.Sprintf("%s: %s <-> %s", pk.pat, nameA, nameB),
			Unit:   "sec",
			Desc:   fmt.Sprintf("%s instances between metahosts %s and %s", pk.pat, nameA, nameB),
			Parent: parent,
		})
	}

	for rank, rr := range a.results {
		// Map rank-local call-path ids to report call nodes. Parents
		// precede children in rr.paths by construction.
		cpMap := make([]int, len(rr.paths))
		for i, cp := range rr.paths {
			parent := -1
			if cp.parent >= 0 {
				parent = cpMap[cp.parent]
			}
			cpMap[i] = rep.Child(parent, cp.name)
		}
		for i, acc := range rr.acc {
			c := cpMap[i]
			rep.Add(ms.visits, c, rank, acc.visits)
			if acc.bytesSent > 0 {
				rep.Add(ms.bytesSent, c, rank, acc.bytesSent)
			}
			if acc.bytesRecv > 0 {
				rep.Add(ms.bytesRecv, c, rank, acc.bytesRecv)
			}
			// Pair-classified shares move into the per-pair child
			// metrics; the grid metric keeps any unclassified rest so
			// inclusive totals are preserved exactly.
			pairByPat := make(map[pattern.ID]float64, len(acc.pairs))
			for pk, v := range acc.pairs {
				pairByPat[pk.pat] += v
				rep.Add(pairMetric[pk], c, rank, v)
			}
			waitSum := 0.0
			for p := pattern.ID(0); p < pattern.NumPatterns; p++ {
				if acc.waits[p] > 0 {
					excl := acc.waits[p] - pairByPat[p]
					if excl < 0 {
						excl = 0
					}
					if excl > 0 {
						rep.Add(ms.pat[p], c, rank, excl)
					}
					waitSum += acc.waits[p]
				}
			}
			rest := acc.excl - waitSum
			if rest < 0 {
				rest = 0
			}
			switch rr.paths[i].kind {
			case trace.RegionUser:
				rep.Add(ms.execution, c, rank, acc.excl)
			case trace.RegionMPIP2P:
				rep.Add(ms.p2p, c, rank, rest)
			case trace.RegionMPIColl:
				if rr.paths[i].name == "MPI_Barrier" {
					rep.Add(ms.sync, c, rank, rest)
				} else {
					rep.Add(ms.coll, c, rank, rest)
				}
			default: // RegionMPIOther
				rep.Add(ms.mpi, c, rank, rest)
			}
		}
	}
	return rep
}
