package phase

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// FamilyOf folds a profile metric key to its pattern family: the grid
// and wrong-order specializations are children of their base pattern
// in the metric tree, and per-phase severities are reported at family
// granularity (matching the streaming sink's contract).
func FamilyOf(metric string) string {
	metric = strings.TrimSuffix(metric, ".grid")
	return strings.TrimSuffix(metric, ".wrong_order")
}

// SevRow is one (family, metahost) severity cell of one phase.
type SevRow struct {
	Family       string  `json:"family"`
	Metahost     int     `json:"metahost"`
	MetahostName string  `json:"metahost_name,omitempty"`
	Severity     float64 `json:"severity"`
}

// PhaseRow is one detected phase of the artifact.
type PhaseRow struct {
	Index int     `json:"index"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Sig is the phase's multiset signature (hex): equal iff the
	// phases ran the same multiset of region instances over the same
	// rank count.
	Sig string `json:"sig"`
	// Kinds is the rank-count-agnostic structural signature (hex):
	// equal iff the phases ran the same set of region names. Cross-
	// archive alignment with changed rank counts matches on it.
	Kinds string   `json:"kinds"`
	Ops   int      `json:"ops"`
	Rows  []SevRow `json:"rows,omitempty"`
}

// Profile is the deterministic per-phase severity artifact — the
// phase-resolved counterpart of profile.Profile, written by mtanalyze
// -phases-out and compared by mtdiff -phases.
type Profile struct {
	Title  string `json:"title,omitempty"`
	Ranks  int    `json:"ranks"`
	Period int    `json:"period"`
	Pre    int    `json:"pre,omitempty"`
	Post   int    `json:"post,omitempty"`
	// Phases lists every detected phase in time order, each with its
	// per-(family, metahost) severities sorted by (family, metahost).
	Phases []PhaseRow `json:"phases"`
}

// SeverityAt returns the severity of (family, metahost) in phase i, or
// 0 when absent.
func (p *Profile) SeverityAt(i int, family string, metahost int) float64 {
	if i < 0 || i >= len(p.Phases) {
		return 0
	}
	for _, r := range p.Phases[i].Rows {
		if r.Family == family && r.Metahost == metahost {
			return r.Severity
		}
	}
	return 0
}

// FamilyTotal sums one family's severity over every phase and
// metahost — the global number the per-phase rows refine.
func (p *Profile) FamilyTotal(family string) float64 {
	total := 0.0
	for _, ph := range p.Phases {
		for _, r := range ph.Rows {
			if r.Family == family {
				total += r.Severity
			}
		}
	}
	return total
}

// sigString renders a signature in the artifact's fixed-width hex.
func sigString(v uint64) string { return fmt.Sprintf("%016x", v) }

// cellKey addresses one accumulator cell.
type cellKey struct {
	phase    int
	family   string
	metahost int
}

// Accumulator folds severity deposits into per-(phase, family,
// metahost) cells. It must be fed sequentially in a deterministic
// order: each cell's floating-point sum is the deposits in call order,
// which is what keeps the artifact byte-identical across analysis
// modes (the replay folds rank-major over per-rank deferred logs).
type Accumulator struct {
	seg   *Segmentation
	ranks int
	cells map[cellKey]float64
	names map[int]string
}

// NewAccumulator prepares an accumulator over the detected
// segmentation for a run with the given rank count.
func NewAccumulator(seg *Segmentation, ranks int) *Accumulator {
	return &Accumulator{
		seg:   seg,
		ranks: ranks,
		cells: make(map[cellKey]float64, 64),
		names: make(map[int]string, 4),
	}
}

// SetMetahostName registers a metahost's display name.
func (a *Accumulator) SetMetahostName(mh int, name string) { a.names[mh] = name }

// Add deposits one severity (or volume) sample: the whole value is
// attributed to the phase containing its start time, folded to the
// metric's family.
func (a *Accumulator) Add(metric string, metahost int, start, val float64) {
	if val == 0 {
		return
	}
	k := cellKey{phase: a.seg.IndexOf(start), family: FamilyOf(metric), metahost: metahost}
	a.cells[k] += val
}

// Snapshot renders the accumulated cells as the artifact, rows sorted
// by (phase, family, metahost).
func (a *Accumulator) Snapshot(title string) *Profile {
	keys := make([]cellKey, 0, len(a.cells))
	for k := range a.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].phase != keys[j].phase {
			return keys[i].phase < keys[j].phase
		}
		if keys[i].family != keys[j].family {
			return keys[i].family < keys[j].family
		}
		return keys[i].metahost < keys[j].metahost
	})
	p := &Profile{
		Title:  title,
		Ranks:  a.ranks,
		Period: a.seg.Period,
		Pre:    a.seg.Pre,
		Post:   a.seg.Post,
		Phases: make([]PhaseRow, a.seg.Phases()),
	}
	for i := range p.Phases {
		p.Phases[i] = PhaseRow{
			Index: i,
			Start: a.seg.Bounds[i],
			End:   a.seg.Bounds[i+1],
			Sig:   sigString(a.seg.Sigs[i]),
			Kinds: sigString(a.seg.Kinds[i]),
			Ops:   a.seg.Counts[i],
		}
	}
	for _, k := range keys {
		p.Phases[k.phase].Rows = append(p.Phases[k.phase].Rows, SevRow{
			Family:       k.family,
			Metahost:     k.metahost,
			MetahostName: a.names[k.metahost],
			Severity:     a.cells[k],
		})
	}
	return p
}

// WriteJSON writes the artifact as indented JSON. Row order is fixed
// by Snapshot and encoding/json formats floats canonically, so equal
// profiles serialize byte-identically.
func (p *Profile) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteCSV writes the artifact in long CSV form: one line per
// severity cell, phases without cells keeping one line so the phase
// structure survives the export.
func (p *Profile) WriteCSV(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# ranks=%d period=%d pre=%d post=%d phases=%d\n",
		p.Ranks, p.Period, p.Pre, p.Post, len(p.Phases))
	b.WriteString("phase,start,end,sig,kinds,ops,family,metahost,metahost_name,severity\n")
	for _, ph := range p.Phases {
		prefix := fmt.Sprintf("%d,%s,%s,%s,%s,%d", ph.Index,
			strconv.FormatFloat(ph.Start, 'g', -1, 64),
			strconv.FormatFloat(ph.End, 'g', -1, 64), ph.Sig, ph.Kinds, ph.Ops)
		if len(ph.Rows) == 0 {
			fmt.Fprintf(&b, "%s,,,,\n", prefix)
			continue
		}
		for _, r := range ph.Rows {
			fmt.Fprintf(&b, "%s,%s,%d,%s,%s\n", prefix, r.Family, r.Metahost,
				csvEscape(r.MetahostName), strconv.FormatFloat(r.Severity, 'g', -1, 64))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// WriteFile writes the artifact to path, choosing CSV for .csv paths
// and JSON otherwise.
func (p *Profile) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = p.WriteCSV(f)
	} else {
		err = p.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Read decodes a JSON phase artifact and validates its shape.
func Read(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("phase: decoding artifact: %w", err)
	}
	if p.Period < 1 {
		return nil, fmt.Errorf("phase: invalid artifact: period %d", p.Period)
	}
	for i, ph := range p.Phases {
		if ph.Index != i {
			return nil, fmt.Errorf("phase: invalid artifact: phase %d carries index %d", i, ph.Index)
		}
		if ph.End < ph.Start {
			return nil, fmt.Errorf("phase: invalid artifact: phase %d spans [%g, %g)", i, ph.Start, ph.End)
		}
	}
	return &p, nil
}

// ReadFile reads a JSON phase artifact from path.
func ReadFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}
