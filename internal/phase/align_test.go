package phase

import (
	"fmt"
	"testing"
)

// mkProfile builds a profile whose phase i carries Sig/Kinds derived
// from kinds[i], with optional severity rows.
func mkProfile(ranks int, kinds []uint64, rows map[int][]SevRow) *Profile {
	p := &Profile{Ranks: ranks, Period: 1, Phases: make([]PhaseRow, len(kinds))}
	for i, k := range kinds {
		p.Phases[i] = PhaseRow{
			Index: i,
			Start: float64(i),
			End:   float64(i) + 1,
			Sig:   sigString(k * 31),
			Kinds: sigString(k),
			Ops:   1,
			Rows:  rows[i],
		}
	}
	return p
}

func TestAlignMatch(t *testing.T) {
	a := mkProfile(4, []uint64{1, 2, 1, 2}, nil)
	b := mkProfile(4, []uint64{1, 2, 1, 2}, nil)
	mode, pairs := Align(a, b)
	if mode != "match" {
		t.Fatalf("mode = %q, want match", mode)
	}
	if len(pairs) != 4 {
		t.Fatalf("pairs = %v, want identity of length 4", pairs)
	}
	for i, p := range pairs {
		if p.A != i || p.B != i {
			t.Fatalf("pair %d = %+v, want identity", i, p)
		}
	}
}

func TestAlignInsertedPhase(t *testing.T) {
	a := mkProfile(4, []uint64{1, 2, 1, 2}, nil)
	b := mkProfile(4, []uint64{1, 2, 9, 1, 2}, nil) // phase 2 inserted
	mode, pairs := Align(a, b)
	if mode != "align" {
		t.Fatalf("mode = %q, want align", mode)
	}
	want := []Pair{{0, 0}, {1, 1}, {2, 3}, {3, 4}}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("pairs = %v, want %v", pairs, want)
		}
	}
}

func TestAlignRankCountChange(t *testing.T) {
	// Same structure at different rank counts: multiset sigs differ,
	// Kinds agree, so the LCS pairs everything.
	a := mkProfile(4, []uint64{1, 2, 1, 2}, nil)
	b := mkProfile(8, []uint64{1, 2, 1, 2}, nil)
	for i := range b.Phases {
		b.Phases[i].Sig = sigString(uint64(1000 + i)) // rank-count-sensitive
	}
	mode, pairs := Align(a, b)
	if mode != "align" || len(pairs) != 4 {
		t.Fatalf("mode %q pairs %v, want align with 4 pairs", mode, pairs)
	}
}

func TestAlignEmpty(t *testing.T) {
	a := mkProfile(2, nil, nil)
	b := mkProfile(2, []uint64{1}, nil)
	if _, pairs := Align(a, b); len(pairs) != 0 {
		t.Fatalf("pairs = %v, want none", pairs)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	ls, wb := "mpi.late_sender", "mpi.wait_barrier"
	a := mkProfile(4, []uint64{1, 1, 1}, map[int][]SevRow{
		0: {{Family: ls, Metahost: 0, Severity: 1.0}},
		1: {{Family: ls, Metahost: 0, Severity: 1.0}},
		2: {{Family: wb, Metahost: 1, Severity: 0.5}},
	})
	b := mkProfile(4, []uint64{1, 1, 1}, map[int][]SevRow{
		0: {{Family: ls, Metahost: 0, Severity: 1.1}}, // below threshold
		1: {{Family: ls, Metahost: 0, Severity: 3.0}}, // 3x: regressed
		2: {{Family: wb, Metahost: 1, Severity: 0.5},
			{Family: ls, Metahost: 0, Severity: 0.01}}, // from zero base
	})
	c := Compare(a, b, 2.0, 1e-3)
	if c.Mode != "match" {
		t.Fatalf("mode = %q, want match", c.Mode)
	}
	if c.Regressions != 2 {
		t.Fatalf("regressions = %d, want 2 (rows %+v)", c.Regressions, c.Rows)
	}
	find := func(phase int, family string) DeltaRow {
		for _, r := range c.Rows {
			if r.PhaseA == phase && r.Family == family {
				return r
			}
		}
		t.Fatalf("no row for phase %d family %s", phase, family)
		return DeltaRow{}
	}
	if r := find(0, ls); r.Regressed || r.Ratio < 1.09 || r.Ratio > 1.11 {
		t.Fatalf("phase 0: %+v, want not regressed at ratio 1.1", r)
	}
	if r := find(1, ls); !r.Regressed || r.Ratio != 3.0 {
		t.Fatalf("phase 1: %+v, want regressed at ratio 3", r)
	}
	if r := find(2, ls); !r.Regressed || r.Base != 0 || r.Ratio != 0 {
		t.Fatalf("phase 2 ls: %+v, want regressed from zero base with ratio 0", r)
	}
	if r := find(2, wb); r.Regressed {
		t.Fatalf("phase 2 wb: %+v, want unchanged", r)
	}
}

func TestCompareMinDeltaSuppressesNoise(t *testing.T) {
	ls := "mpi.late_sender"
	a := mkProfile(2, []uint64{1}, map[int][]SevRow{
		0: {{Family: ls, Metahost: 0, Severity: 1e-6}},
	})
	b := mkProfile(2, []uint64{1}, map[int][]SevRow{
		0: {{Family: ls, Metahost: 0, Severity: 5e-6}},
	})
	if c := Compare(a, b, 2.0, 1e-3); c.Regressions != 0 {
		t.Fatalf("regressions = %d, want 0 (5x growth below min delta)", c.Regressions)
	}
}

func TestCompareDefaults(t *testing.T) {
	a := mkProfile(2, []uint64{1}, nil)
	c := Compare(a, a, 0, 0)
	if c.Threshold != DefaultThreshold || c.MinDelta != DefaultMinDelta {
		t.Fatalf("defaults not applied: threshold %g min delta %g", c.Threshold, c.MinDelta)
	}
}

// FuzzPhaseAlign checks the aligner's invariants on arbitrary phase
// signature sequences: pairs strictly increasing in both coordinates,
// indices in range, matched phases structurally equal in align mode,
// and Compare self-consistent.
func FuzzPhaseAlign(f *testing.F) {
	f.Add([]byte{1, 2, 1, 2}, []byte{1, 2, 1, 2})
	f.Add([]byte{1, 2, 1, 2}, []byte{1, 2, 9, 1, 2})
	f.Add([]byte{}, []byte{3, 3, 3})
	f.Add([]byte{5, 4, 3, 2, 1}, []byte{1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, sa, sb []byte) {
		if len(sa) > 512 {
			sa = sa[:512]
		}
		if len(sb) > 512 {
			sb = sb[:512]
		}
		mk := func(s []byte) *Profile {
			kinds := make([]uint64, len(s))
			for i, c := range s {
				kinds[i] = uint64(c%7) + 1 // small alphabet: force real LCS work
			}
			var rows map[int][]SevRow
			if len(s) > 0 {
				rows = map[int][]SevRow{0: {{Family: "mpi.late_sender", Metahost: 0,
					Severity: float64(s[0])}}}
			}
			return mkProfile(2, kinds, rows)
		}
		a, b := mk(sa), mk(sb)
		mode, pairs := Align(a, b)
		if mode != "match" && mode != "align" {
			t.Fatalf("unknown mode %q", mode)
		}
		if n := min(len(a.Phases), len(b.Phases)); len(pairs) > n {
			t.Fatalf("%d pairs exceed min phase count %d", len(pairs), n)
		}
		for i, p := range pairs {
			if p.A < 0 || p.A >= len(a.Phases) || p.B < 0 || p.B >= len(b.Phases) {
				t.Fatalf("pair %+v out of range (%d x %d phases)", p, len(a.Phases), len(b.Phases))
			}
			if i > 0 && (p.A <= pairs[i-1].A || p.B <= pairs[i-1].B) {
				t.Fatalf("pairs not strictly increasing: %v", pairs)
			}
			if a.Phases[p.A].Kinds != b.Phases[p.B].Kinds {
				t.Fatalf("pair %+v matches different structures %s vs %s",
					p, a.Phases[p.A].Kinds, b.Phases[p.B].Kinds)
			}
		}
		c := Compare(a, b, 2.0, 1e-3)
		n := 0
		for _, r := range c.Rows {
			if r.Regressed {
				n++
			}
		}
		if n != c.Regressions {
			t.Fatalf("Regressions = %d, rows flag %d", c.Regressions, n)
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Guard against accidental format drift in the hex signatures the
// aligner keys on.
func TestSigStringWidth(t *testing.T) {
	for _, v := range []uint64{0, 1, ^uint64(0)} {
		if s := sigString(v); len(s) != 16 {
			t.Fatalf("sigString(%d) = %q, want 16 hex digits", v, s)
		}
	}
	if sigString(255) != fmt.Sprintf("%016x", 255) {
		t.Fatal("sigString format drifted")
	}
}
