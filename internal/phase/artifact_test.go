package phase

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestFamilyOf(t *testing.T) {
	cases := map[string]string{
		"mpi.late_sender":             "mpi.late_sender",
		"mpi.late_sender.grid":        "mpi.late_sender",
		"mpi.late_sender.wrong_order": "mpi.late_sender",
		"mpi.wait_barrier.grid":       "mpi.wait_barrier",
	}
	for in, want := range cases {
		if got := FamilyOf(in); got != want {
			t.Fatalf("FamilyOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func testSeg() *Segmentation {
	return &Segmentation{
		Bounds: []float64{0, 10, 20},
		Sigs:   []uint64{0xa1, 0xa2},
		Kinds:  []uint64{0xb1, 0xb2},
		Counts: []int{3, 3},
		Period: 1,
	}
}

func TestAccumulatorFoldsByPhaseFamilyMetahost(t *testing.T) {
	acc := NewAccumulator(testSeg(), 4)
	acc.SetMetahostName(0, "viola-a")
	acc.Add("mpi.late_sender", 0, 1.0, 0.5)
	acc.Add("mpi.late_sender.grid", 0, 2.0, 0.25) // folds into the family
	acc.Add("mpi.late_sender", 0, 15.0, 1.5)      // second phase
	acc.Add("mpi.wait_barrier", 1, 3.0, 2.0)
	acc.Add("mpi.wait_barrier", 1, 4.0, 0) // zero severities are dropped
	p := acc.Snapshot("t")
	if p.Title != "t" || p.Ranks != 4 || p.Period != 1 || len(p.Phases) != 2 {
		t.Fatalf("header wrong: %+v", p)
	}
	wantP0 := []SevRow{
		{Family: "mpi.late_sender", Metahost: 0, MetahostName: "viola-a", Severity: 0.75},
		{Family: "mpi.wait_barrier", Metahost: 1, Severity: 2.0},
	}
	if !reflect.DeepEqual(p.Phases[0].Rows, wantP0) {
		t.Fatalf("phase 0 rows = %+v, want %+v", p.Phases[0].Rows, wantP0)
	}
	if got := p.SeverityAt(1, "mpi.late_sender", 0); got != 1.5 {
		t.Fatalf("SeverityAt(1) = %g, want 1.5", got)
	}
	if got := p.SeverityAt(7, "mpi.late_sender", 0); got != 0 {
		t.Fatalf("SeverityAt out of range = %g, want 0", got)
	}
	if got := p.FamilyTotal("mpi.late_sender"); got != 2.25 {
		t.Fatalf("FamilyTotal = %g, want 2.25", got)
	}
	if p.Phases[0].Sig != sigString(0xa1) || p.Phases[1].Kinds != sigString(0xb2) {
		t.Fatalf("signatures not carried: %+v", p.Phases)
	}
}

func TestArtifactJSONRoundTrip(t *testing.T) {
	acc := NewAccumulator(testSeg(), 4)
	acc.SetMetahostName(1, "ibm-power")
	acc.Add("mpi.late_sender", 1, 1.0, 0.125)
	p := acc.Snapshot("round-trip")
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, p)
	}
	var again bytes.Buffer
	if err := got.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-serialization is not byte-identical")
	}
}

func TestArtifactCSV(t *testing.T) {
	acc := NewAccumulator(testSeg(), 4)
	acc.SetMetahostName(0, "a,b") // must be escaped
	acc.Add("mpi.late_sender", 0, 1.0, 0.5)
	var buf bytes.Buffer
	if err := acc.Snapshot("").WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// header comment + column header + one cell line + one empty-phase line
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "# ranks=4 period=1") {
		t.Fatalf("bad comment header: %s", lines[0])
	}
	if !strings.Contains(lines[2], `"a,b"`) {
		t.Fatalf("metahost name not escaped: %s", lines[2])
	}
	if !strings.HasSuffix(lines[3], ",,,,") {
		t.Fatalf("empty phase line missing: %s", lines[3])
	}
}

func TestArtifactWriteReadFile(t *testing.T) {
	acc := NewAccumulator(testSeg(), 2)
	acc.Add("mpi.wait_nxn", 0, 1.0, 3.5)
	p := acc.Snapshot("file")
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "phases.json")
	csvPath := filepath.Join(dir, "phases.csv")
	if err := p.WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteFile(csvPath); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("file round trip drifted: %+v vs %+v", got, p)
	}
	if _, err := ReadFile(csvPath); err == nil {
		t.Fatal("reading CSV as JSON must fail")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"ranks":2,"period":0,"phases":[]}`,
		`{"ranks":2,"period":1,"phases":[{"index":1,"start":0,"end":1}]}`,
		`{"ranks":2,"period":1,"phases":[{"index":0,"start":5,"end":1}]}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("Read accepted malformed artifact %s", c)
		}
	}
}
