package phase

import "sort"

// Pair maps phase index A in the base profile to phase index B in the
// current profile.
type Pair struct {
	A int `json:"a"`
	B int `json:"b"`
}

// maxLCSCells bounds the LCS table; beyond it Align falls back to
// positional pairing over the common prefix.
const maxLCSCells = 4 << 20

// Align pairs the phases of two profiles. When both runs have the
// same rank count, the same phase count, and positionally equal
// multiset signatures, the pairing is the identity ("match" mode).
// Otherwise it aligns on the rank-count-agnostic Kinds signatures
// with a longest-common-subsequence pass ("align" mode), so a run
// that gained or lost phases — or changed rank counts — still lines
// up on structure.
func Align(a, b *Profile) (mode string, pairs []Pair) {
	if a.Ranks == b.Ranks && len(a.Phases) == len(b.Phases) {
		match := true
		for i := range a.Phases {
			if a.Phases[i].Sig != b.Phases[i].Sig {
				match = false
				break
			}
		}
		if match {
			pairs = make([]Pair, len(a.Phases))
			for i := range pairs {
				pairs[i] = Pair{A: i, B: i}
			}
			return "match", pairs
		}
	}
	return "align", lcsPairs(kindsOf(a), kindsOf(b))
}

func kindsOf(p *Profile) []string {
	out := make([]string, len(p.Phases))
	for i, ph := range p.Phases {
		out[i] = ph.Kinds
	}
	return out
}

// lcsPairs computes a longest common subsequence of the two signature
// sequences and returns the matched index pairs, strictly increasing
// in both coordinates.
func lcsPairs(a, b []string) []Pair {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return nil
	}
	if n*m > maxLCSCells {
		// Degenerate inputs (enormous phase counts): pair positionally
		// over the common prefix where signatures agree.
		var pairs []Pair
		k := n
		if m < k {
			k = m
		}
		for i := 0; i < k; i++ {
			if a[i] == b[i] {
				pairs = append(pairs, Pair{A: i, B: i})
			}
		}
		return pairs
	}
	// dp[i][j] = LCS length of a[i:], b[j:].
	dp := make([][]int32, n+1)
	cells := make([]int32, (n+1)*(m+1))
	for i := range dp {
		dp[i] = cells[i*(m+1) : (i+1)*(m+1)]
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	var pairs []Pair
	for i, j := 0, 0; i < n && j < m; {
		switch {
		case a[i] == b[j]:
			pairs = append(pairs, Pair{A: i, B: j})
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return pairs
}

// DeltaRow is one per-(phase pair, family, metahost) severity
// comparison.
type DeltaRow struct {
	PhaseA       int     `json:"phase_a"`
	PhaseB       int     `json:"phase_b"`
	Family       string  `json:"family"`
	Metahost     int     `json:"metahost"`
	MetahostName string  `json:"metahost_name,omitempty"`
	Base         float64 `json:"base"`
	Cur          float64 `json:"cur"`
	// Ratio is Cur/Base, or 0 when Base is 0.
	Ratio     float64 `json:"ratio"`
	Regressed bool    `json:"regressed"`
}

// Comparison is the machine-readable result of a phase-aligned diff.
type Comparison struct {
	Mode        string     `json:"mode"`
	APhases     int        `json:"a_phases"`
	BPhases     int        `json:"b_phases"`
	Pairs       []Pair     `json:"pairs"`
	Rows        []DeltaRow `json:"rows,omitempty"`
	Regressions int        `json:"regressions"`
	Threshold   float64    `json:"threshold"`
	MinDelta    float64    `json:"min_delta"`
}

// Default regression gates for Compare: a cell regresses when the
// current severity is at least Threshold× the base AND grew by at
// least MinDelta seconds — or appeared from a zero base by MinDelta.
const (
	DefaultThreshold = 2.0
	DefaultMinDelta  = 1e-3
)

// Compare aligns two phase profiles and flags per-phase severity
// regressions of b (current) against a (base).
func Compare(a, b *Profile, threshold, minDelta float64) *Comparison {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	if minDelta <= 0 {
		minDelta = DefaultMinDelta
	}
	mode, pairs := Align(a, b)
	c := &Comparison{
		Mode:      mode,
		APhases:   len(a.Phases),
		BPhases:   len(b.Phases),
		Pairs:     pairs,
		Threshold: threshold,
		MinDelta:  minDelta,
	}
	type cell struct {
		family   string
		metahost int
	}
	for _, pr := range pairs {
		pa, pb := &a.Phases[pr.A], &b.Phases[pr.B]
		seen := make(map[cell]bool, len(pa.Rows)+len(pb.Rows))
		names := make(map[int]string, 4)
		var cellsOrder []cell
		for _, r := range append(append([]SevRow{}, pa.Rows...), pb.Rows...) {
			k := cell{r.Family, r.Metahost}
			if !seen[k] {
				seen[k] = true
				cellsOrder = append(cellsOrder, k)
			}
			if r.MetahostName != "" {
				names[r.Metahost] = r.MetahostName
			}
		}
		sort.Slice(cellsOrder, func(i, j int) bool {
			if cellsOrder[i].family != cellsOrder[j].family {
				return cellsOrder[i].family < cellsOrder[j].family
			}
			return cellsOrder[i].metahost < cellsOrder[j].metahost
		})
		for _, k := range cellsOrder {
			base := a.SeverityAt(pr.A, k.family, k.metahost)
			cur := b.SeverityAt(pr.B, k.family, k.metahost)
			row := DeltaRow{
				PhaseA:       pr.A,
				PhaseB:       pr.B,
				Family:       k.family,
				Metahost:     k.metahost,
				MetahostName: names[k.metahost],
				Base:         base,
				Cur:          cur,
			}
			if base > 0 {
				row.Ratio = cur / base
				row.Regressed = cur >= threshold*base && cur-base >= minDelta
			} else {
				row.Regressed = cur >= minDelta
			}
			if row.Regressed {
				c.Regressions++
			}
			c.Rows = append(c.Rows, row)
		}
	}
	return c
}
