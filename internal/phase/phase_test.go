package phase

import (
	"math/rand"
	"reflect"
	"testing"
)

var (
	sigA    = SigOf("MPI_Send")
	sigB    = SigOf("MPI_Recv")
	sigC    = SigOf("MPI_Barrier")
	sigInit = SigOf("MPI_Init")
)

// op is a test shorthand.
func op(enter, exit float64, sig uint64) Op { return Op{Enter: enter, Exit: exit, Sig: sig} }

func TestSigOfDistinguishesNames(t *testing.T) {
	if sigA == sigB || sigA == sigC || sigB == sigC {
		t.Fatalf("region signatures collide: %x %x %x", sigA, sigB, sigC)
	}
	if SigOf("MPI_Send") != sigA {
		t.Fatal("SigOf is not a pure function of the name")
	}
}

func TestDetectEmpty(t *testing.T) {
	for _, in := range [][][]Op{nil, {}, {nil, nil}} {
		s := Detect(in)
		if s.Phases() != 1 || s.Period != 1 || s.Counts[0] != 0 {
			t.Fatalf("empty input: got %d phases period %d counts %v", s.Phases(), s.Period, s.Counts)
		}
	}
}

// TestDetectPeriodic is the clean case: two ranks, three iterations of
// an exchange/reduce pair separated by silences.
func TestDetectPeriodic(t *testing.T) {
	var r0, r1 []Op
	for i := 0; i < 3; i++ {
		t0 := float64(i) * 10
		r0 = append(r0, op(t0, t0+1, sigA), op(t0+5, t0+6, sigB))
		r1 = append(r1, op(t0+0.2, t0+1.2, sigA), op(t0+5.2, t0+6.2, sigB))
	}
	s := Detect([][]Op{r0, r1})
	if s.Phases() != 6 {
		t.Fatalf("phases = %d, want 6 (bounds %v)", s.Phases(), s.Bounds)
	}
	if s.Period != 2 || s.Pre != 0 || s.Post != 0 {
		t.Fatalf("period %d pre %d post %d, want 2 0 0", s.Period, s.Pre, s.Post)
	}
	for i, c := range s.Counts {
		if c != 2 {
			t.Fatalf("phase %d: %d ops, want 2", i, c)
		}
	}
	// Alternating steps: signatures repeat with period 2 exactly.
	for i := 2; i < 6; i++ {
		if s.Sigs[i] != s.Sigs[i-2] || s.Kinds[i] != s.Kinds[i-2] {
			t.Fatalf("phase %d does not repeat phase %d", i, i-2)
		}
	}
	if s.Sigs[0] == s.Sigs[1] {
		t.Fatal("distinct steps alias to one signature")
	}
}

// TestDetectPrologueTrim plants a one-off setup region before the
// periodic body; validation must absorb it as a prologue phase.
func TestDetectPrologueTrim(t *testing.T) {
	rows := make([][]Op, 2)
	for r := range rows {
		rows[r] = append(rows[r], op(-10, -9, sigInit))
		for i := 0; i < 3; i++ {
			t0 := float64(i) * 10
			rows[r] = append(rows[r], op(t0, t0+1, sigA), op(t0+5, t0+6, sigB))
		}
	}
	s := Detect(rows)
	if s.Phases() != 7 || s.Pre != 1 || s.Post != 0 || s.Period != 2 {
		t.Fatalf("phases %d pre %d post %d period %d, want 7 1 0 2",
			s.Phases(), s.Pre, s.Post, s.Period)
	}
}

// TestDetectRaggedRanks: rank 1 only joins every other step (a border
// rank of a stencil). Its per-rank period differs from rank 0's, and
// detection must still accept the partition.
func TestDetectRaggedRanks(t *testing.T) {
	var r0, r1 []Op
	for i := 0; i < 6; i++ {
		t0 := float64(i) * 10
		r0 = append(r0, op(t0, t0+1, sigA))
		if i%2 == 0 {
			r1 = append(r1, op(t0, t0+1, sigA))
		}
	}
	s := Detect([][]Op{r0, r1})
	if s.Phases() != 6 {
		t.Fatalf("phases = %d, want 6", s.Phases())
	}
	if s.Period != 2 {
		t.Fatalf("period = %d, want 2 (op counts alternate 2,1)", s.Period)
	}
	wantCounts := []int{2, 1, 2, 1, 2, 1}
	if !reflect.DeepEqual(s.Counts, wantCounts) {
		t.Fatalf("counts = %v, want %v", s.Counts, wantCounts)
	}
}

// TestDetectSkipsAperiodicFinestCut: the middle iteration has an
// internal silence the others lack, so the finest partition is
// aperiodic (and beyond what prologue/epilogue trimming may absorb)
// and detection must advance to the coarser threshold that recovers
// the five iterations.
func TestDetectSkipsAperiodicFinestCut(t *testing.T) {
	var r0 []Op
	for i := 0; i < 5; i++ {
		t0 := float64(i) * 10
		if i == 2 {
			r0 = append(r0, op(t0, t0+1, sigA), op(t0+2, t0+3, sigB))
		} else {
			r0 = append(r0, op(t0, t0+1, sigA), op(t0+1, t0+2, sigB))
		}
	}
	s := Detect([][]Op{r0})
	if s.Phases() != 5 || s.Period != 1 {
		t.Fatalf("phases %d period %d, want 5 1 (bounds %v)", s.Phases(), s.Period, s.Bounds)
	}
	for i, c := range s.Counts {
		if c != 2 {
			t.Fatalf("phase %d: %d ops, want 2", i, c)
		}
	}
}

// TestDetectFallback: three unrelated regions with no repetition at
// any threshold fall back to the finest silence partition.
func TestDetectFallback(t *testing.T) {
	r0 := []Op{op(0, 1, sigA), op(11, 12, sigB), op(23, 24, sigC)}
	s := Detect([][]Op{r0})
	if s.Phases() != 3 || s.Pre != 0 || s.Post != 0 {
		t.Fatalf("phases %d pre %d post %d, want 3 0 0", s.Phases(), s.Pre, s.Post)
	}
	if s.Period != 3 {
		t.Fatalf("period = %d, want 3 (aperiodic fallback)", s.Period)
	}
}

func TestIndexOf(t *testing.T) {
	s := &Segmentation{
		Bounds: []float64{0, 5, 10},
		Sigs:   []uint64{1, 2},
		Kinds:  []uint64{1, 2},
		Counts: []int{1, 1},
		Period: 1,
	}
	cases := []struct {
		t    float64
		want int
	}{
		{-1, 0}, {0, 0}, {4.9, 0}, {5, 1}, {7, 1}, {10, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := s.IndexOf(c.t); got != c.want {
			t.Fatalf("IndexOf(%g) = %d, want %d", c.t, got, c.want)
		}
	}
}

// TestDetectOrderInsensitive: the multiset hash must not depend on op
// order within a rank's log.
func TestDetectOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := make([][]Op, 3)
	for r := range base {
		for i := 0; i < 4; i++ {
			t0 := float64(i)*8 + rng.Float64()
			base[r] = append(base[r], op(t0, t0+1, sigA), op(t0+3, t0+4, sigB))
		}
	}
	want := Detect(base)
	shuffled := make([][]Op, len(base))
	for r := range base {
		shuffled[r] = append([]Op(nil), base[r]...)
		rng.Shuffle(len(shuffled[r]), func(i, j int) {
			shuffled[r][i], shuffled[r][j] = shuffled[r][j], shuffled[r][i]
		})
	}
	got := Detect(shuffled)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("detection depends on op order:\n got %+v\nwant %+v", got, want)
	}
}

func TestDetectManyGapsStaysBounded(t *testing.T) {
	// More silences than maxCuts, all of distinct lengths: the
	// pre-merge keeps detection feasible and the result still covers
	// the run.
	var r0 []Op
	n := maxCuts + 200
	t0, lastExit := 0.0, 0.0
	for i := 0; i < n; i++ {
		r0 = append(r0, op(t0, t0+1, sigA))
		lastExit = t0 + 1
		t0 += 2 + float64(i)*1e-3
	}
	s := Detect([][]Op{r0})
	if s.Phases() > maxCuts+1 {
		t.Fatalf("phases = %d, want <= %d", s.Phases(), maxCuts+1)
	}
	if s.Bounds[0] != 0 || s.Bounds[len(s.Bounds)-1] != lastExit {
		t.Fatalf("bounds %g..%g do not cover the run", s.Bounds[0], s.Bounds[len(s.Bounds)-1])
	}
	total := 0
	for _, c := range s.Counts {
		total += c
	}
	if total != n {
		t.Fatalf("counts sum to %d, want %d", total, n)
	}
}
