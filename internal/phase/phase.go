// Package phase detects the repeating iteration structure of a
// replayed experiment and folds wait-state severities per iteration
// instead of globally.
//
// Real metacomputing applications iterate; the paper's displays
// aggregate. A severity that appears only in one iteration on one
// metahost vanishes in the global mean, so the analyzer records, per
// rank, one signature per completed non-user region instance and this
// package segments the run into phases:
//
//  1. the union of all region intervals across ranks yields the
//     covered portions of the time axis; the silences between them are
//     candidate phase boundaries,
//  2. every candidate partition (cut at all gaps at least as long as a
//     threshold, thresholds tried finest-first) is summarized per rank
//     and per phase by an order-insensitive multiset hash of the
//     region signatures inside it,
//  3. a partition is accepted when every rank's phase sequence is
//     periodic after trimming a bounded prologue/epilogue — the
//     per-rank period may differ (ragged rank boundaries: a border
//     rank of a stencil participates in every other exchange).
//
// The multiset hash is a sum of mixed signatures, so it is associative
// across atom merges: a partition's phase hash never depends on where
// sporadic within-phase silences happened to fall. All hashes are over
// region names only — never over timestamps — so equal schedules with
// different speeds segment identically.
package phase

import "sort"

// Op is one completed non-user region instance observed by the replay
// sweep of one rank, in corrected time.
type Op struct {
	Enter float64
	Exit  float64
	Sig   uint64 // SigOf the region name
}

// SigOf hashes a region name (FNV-1a 64).
func SigOf(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: it decorrelates region-name
// hashes before they enter the additive multiset hash, so the sum
// distinguishes multisets that plain FNV sums would alias.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Segmentation is a detected phase structure: K phases delimited by
// K+1 time bounds, each carrying a global multiset signature.
type Segmentation struct {
	// Bounds holds the phase edges in corrected seconds: phase i spans
	// [Bounds[i], Bounds[i+1]). len(Bounds) == Phases()+1.
	Bounds []float64
	// Sigs is the per-phase multiset hash over every rank's ops — the
	// exact-match signature (sensitive to op counts and rank count).
	Sigs []uint64
	// Kinds is the per-phase structural signature: a hash of the set
	// of distinct region names only, insensitive to how many ranks ran
	// them. Cross-archive alignment with changed rank counts uses it.
	Kinds []uint64
	// Counts is the per-phase total op count across ranks.
	Counts []int
	// Pre and Post count prologue/epilogue phases excluded from the
	// periodic core during validation (0 on clean iterative runs).
	Pre, Post int
	// Period is the minimal shift-period of the core phase signature
	// sequence: Sigs[i] == Sigs[i-Period] for all core i ≥ Period.
	Period int
}

// Phases returns the number of detected phases.
func (s *Segmentation) Phases() int { return len(s.Sigs) }

// IndexOf returns the phase containing corrected time t, clamped to
// the first/last phase for times outside the covered span.
func (s *Segmentation) IndexOf(t float64) int {
	i := sort.SearchFloat64s(s.Bounds, t) // first bound >= t
	if i == len(s.Bounds) || s.Bounds[i] != t {
		i--
	}
	if i < 0 {
		i = 0
	}
	if last := s.Phases() - 1; i > last {
		i = last
	}
	return i
}

// maxCuts bounds the number of silence gaps considered as phase
// boundaries; only the longest maxCuts gaps stay cuttable on
// pathological inputs, keeping detection near-linear.
const maxCuts = 4096

// trimOrder lists the (prologue, epilogue) trims validation tries, in
// order of total trimmed phases: a clean iterative run accepts at
// (0,0); an MPI_Init-style preamble or a closing barrier costs one.
var trimOrder = [][2]int{
	{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 0}, {0, 2}, {2, 1}, {1, 2}, {2, 2},
}

// interval is one covered span of the time axis.
type interval struct{ a, b float64 }

// rankAtom is one rank's multiset summary of one atom.
type rankAtom struct {
	sum uint64
	cnt int
}

// Detect segments the run described by the per-rank op logs. It never
// fails: runs with no detectable repetition fall back to the finest
// silence partition, and an empty input yields one empty phase.
func Detect(ops [][]Op) *Segmentation {
	total := 0
	for _, ol := range ops {
		total += len(ol)
	}
	if total == 0 {
		return &Segmentation{
			Bounds: []float64{0, 0},
			Sigs:   []uint64{0},
			Kinds:  []uint64{0},
			Counts: []int{0},
			Period: 1,
		}
	}

	// Coverage union across all ranks.
	ivs := make([]interval, 0, total)
	for _, ol := range ops {
		for _, op := range ol {
			b := op.Exit
			if b < op.Enter {
				b = op.Enter
			}
			ivs = append(ivs, interval{op.Enter, b})
		}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].a != ivs[j].a {
			return ivs[i].a < ivs[j].a
		}
		return ivs[i].b < ivs[j].b
	})
	segs := make([]interval, 0, 64)
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.a <= cur.b {
			if iv.b > cur.b {
				cur.b = iv.b
			}
			continue
		}
		segs = append(segs, cur)
		cur = iv
	}
	segs = append(segs, cur)

	// On inputs with more silences than maxCuts, pre-merge across the
	// shortest ones so only the longest maxCuts gaps stay cuttable.
	if len(segs) > maxCuts+1 {
		lens := make([]float64, 0, len(segs)-1)
		for i := 0; i+1 < len(segs); i++ {
			lens = append(lens, segs[i+1].a-segs[i].b)
		}
		sort.Float64s(lens)
		floor := lens[len(lens)-maxCuts]
		merged := segs[:1]
		for _, sg := range segs[1:] {
			last := &merged[len(merged)-1]
			if sg.a-last.b < floor {
				last.b = sg.b
				continue
			}
			merged = append(merged, sg)
		}
		segs = merged
	}

	nAtoms := len(segs)
	starts := make([]float64, nAtoms)
	for i, sg := range segs {
		starts[i] = sg.a
	}
	atomOf := func(enter float64) int {
		i := sort.SearchFloat64s(starts, enter)
		if i == nAtoms || starts[i] > enter {
			i--
		}
		return i
	}

	// Per-rank per-atom multiset sums, plus the global distinct-name
	// sets feeding the rank-agnostic structural signatures.
	perRank := make([][]rankAtom, len(ops))
	kindSets := make([]map[uint64]struct{}, nAtoms)
	for r, ol := range ops {
		if len(ol) == 0 {
			continue
		}
		row := make([]rankAtom, nAtoms)
		for _, op := range ol {
			at := atomOf(op.Enter)
			row[at].sum += mix64(op.Sig)
			row[at].cnt++
			ks := kindSets[at]
			if ks == nil {
				ks = make(map[uint64]struct{}, 4)
				kindSets[at] = ks
			}
			ks[op.Sig] = struct{}{}
		}
		perRank[r] = row
	}

	gaps := make([]float64, nAtoms-1)
	for i := range gaps {
		gaps[i] = segs[i+1].a - segs[i].b
	}
	thresholds := append([]float64(nil), gaps...)
	sort.Float64s(thresholds)
	distinct := thresholds[:0]
	for i, t := range thresholds {
		if i == 0 || t != thresholds[i-1] {
			distinct = append(distinct, t)
		}
	}

	cutAt := func(threshold float64) []int {
		var cuts []int
		for i, g := range gaps {
			if g >= threshold {
				cuts = append(cuts, i)
			}
		}
		return cuts
	}

	for _, th := range distinct {
		cuts := cutAt(th)
		if len(cuts) == 0 {
			break // coarser thresholds only remove more cuts
		}
		if pre, post, ok := validate(perRank, nAtoms, cuts); ok {
			return build(segs, cuts, perRank, kindSets, pre, post)
		}
	}
	// No periodic partition: fall back to the finest silence partition
	// so the artifact still resolves the run's covered spans.
	return build(segs, cutAt(0), perRank, kindSets, 0, 0)
}

// phaseSeq folds a rank's atom summaries into per-phase tuples for the
// partition cutting after the given atom indices.
func phaseSeq(row []rankAtom, nAtoms int, cuts []int, out []rankAtom) []rankAtom {
	out = out[:0]
	acc := rankAtom{}
	next := 0
	for a := 0; a < nAtoms; a++ {
		acc.sum += row[a].sum
		acc.cnt += row[a].cnt
		if next < len(cuts) && cuts[next] == a {
			out = append(out, acc)
			acc = rankAtom{}
			next++
		}
	}
	return append(out, acc)
}

// minPeriod returns the minimal shift-period of seq via the KMP
// failure function: p is the smallest value with seq[i] == seq[i-p]
// for all i ≥ p.
func minPeriod(seq []rankAtom) int {
	n := len(seq)
	if n == 0 {
		return 1
	}
	fail := make([]int, n+1)
	fail[0], fail[1] = -1, 0
	k := 0
	for i := 1; i < n; i++ {
		for k >= 0 && seq[i] != seq[k] {
			k = fail[k]
		}
		k++
		fail[i+1] = k
	}
	return n - fail[n]
}

// validate accepts a partition when, after one global trim, every
// rank's phase-tuple sequence repeats at least twice.
func validate(perRank [][]rankAtom, nAtoms int, cuts []int) (pre, post int, ok bool) {
	k := len(cuts) + 1
	if k < 2 {
		return 0, 0, false
	}
	seqs := make([][]rankAtom, 0, len(perRank))
	var buf []rankAtom
	for _, row := range perRank {
		if row == nil {
			continue
		}
		buf = phaseSeq(row, nAtoms, cuts, buf)
		seqs = append(seqs, append([]rankAtom(nil), buf...))
	}
	for _, tr := range trimOrder {
		pre, post = tr[0], tr[1]
		l := k - pre - post
		if l < 2 {
			continue
		}
		allOK := true
		for _, seq := range seqs {
			p := minPeriod(seq[pre : k-post])
			if 2*p > l {
				allOK = false
				break
			}
		}
		if allOK {
			return pre, post, true
		}
	}
	return 0, 0, false
}

// build assembles the Segmentation for an accepted partition.
func build(segs []interval, cuts []int, perRank [][]rankAtom, kindSets []map[uint64]struct{}, pre, post int) *Segmentation {
	k := len(cuts) + 1
	s := &Segmentation{
		Bounds: make([]float64, 0, k+1),
		Sigs:   make([]uint64, k),
		Kinds:  make([]uint64, k),
		Counts: make([]int, k),
		Pre:    pre,
		Post:   post,
	}
	s.Bounds = append(s.Bounds, segs[0].a)
	for _, c := range cuts {
		s.Bounds = append(s.Bounds, (segs[c].b+segs[c+1].a)/2)
	}
	s.Bounds = append(s.Bounds, segs[len(segs)-1].b)

	nAtoms := len(segs)
	var buf []rankAtom
	for _, row := range perRank {
		if row == nil {
			continue
		}
		buf = phaseSeq(row, nAtoms, cuts, buf)
		for i, t := range buf {
			s.Sigs[i] += t.sum
			s.Counts[i] += t.cnt
		}
	}
	// Structural signatures: XOR over the distinct region-name hashes
	// of each phase (set semantics — merging atoms unions the sets).
	next, phase := 0, 0
	kinds := make(map[uint64]struct{}, 8)
	flush := func() {
		var h uint64
		for sig := range kinds {
			h ^= mix64(sig)
		}
		s.Kinds[phase] = h
		phase++
		for sig := range kinds {
			delete(kinds, sig)
		}
	}
	for a := 0; a < nAtoms; a++ {
		for sig := range kindSets[a] {
			kinds[sig] = struct{}{}
		}
		if next < len(cuts) && cuts[next] == a {
			flush()
			next++
		}
	}
	flush()

	core := make([]rankAtom, 0, k)
	for i := pre; i < k-post; i++ {
		core = append(core, rankAtom{sum: s.Sigs[i], cnt: s.Counts[i]})
	}
	s.Period = minPeriod(core)
	return s
}
