package topology

import "fmt"

// Preset topologies for the experiments in the paper (§5). Latency
// means and standard deviations for the VIOLA testbed are calibrated to
// Table 1; bandwidths follow the hardware named in the text (Gigabit
// Ethernet, usock over Myrinet, usock over RapidArray, 10 Gbps optical
// wide-area links).

// Kernel labels used by the MetaTrace workload to select per-submodel
// speed factors (see Metahost.Speed).
const (
	KernelTraceCG  = "trace-cg" // Trace: CG solver + finelassdt compute
	KernelPartrace = "partrace" // Partrace: particle tracking compute
)

// VIOLA builds the three-metahost section of the VIOLA testbed used in
// the paper's experiments:
//
//	[0] CAESAR  — 32 × 2-way Intel Xeon 2.6 GHz, Gigabit Ethernet
//	[1] FH-BRS  — 6 × 4-way AMD Opteron 2 GHz, usock over Myrinet
//	[2] FZJ     — Cray XD1, 60 × 2-way AMD Opteron 2.2 GHz, usock over
//	              RapidArray
//
// Sites are 20–100 km apart, joined pairwise by dedicated 10 Gbps
// optical links. The FZJ–FH-BRS latency (988 µs, σ 3.86 µs), FZJ
// internal latency (21.5 µs, σ 0.814 µs), and FH-BRS internal latency
// (44.4 µs, σ 0.360 µs) are taken directly from Table 1. Speed factors
// encode the paper's observation that Trace's non-MPI functions ran
// about twice as fast on FH-BRS as on CAESAR.
func VIOLA() *Metacomputer {
	mc := New("VIOLA")

	gige := Link{ // CAESAR internal: Gigabit Ethernet
		LatencyMean: 55e-6,
		LatencySD:   1.2e-6,
		Bandwidth:   125e6, // 1 Gbps
		Dedicated:   true,
	}
	myrinet := Link{ // FH-BRS internal: usock over Myrinet (Table 1)
		LatencyMean: 44.4e-6,
		LatencySD:   0.360e-6,
		Bandwidth:   250e6, // ~2 Gbps
		Dedicated:   true,
	}
	rapidarray := Link{ // FZJ internal: usock over RapidArray (Table 1)
		LatencyMean: 21.5e-6,
		LatencySD:   0.814e-6,
		Bandwidth:   1e9, // ~8 Gbps
		Dedicated:   true,
	}
	shm := Link{ // same-SMP-node communication
		LatencyMean: 1.5e-6,
		LatencySD:   0.1e-6,
		Bandwidth:   2e9,
		Dedicated:   true,
	}

	clock := ClockSpec{
		MaxOffset:   2.0,  // node clocks may be off by seconds
		MaxDrift:    2e-5, // commodity quartz: tens of µs per second
		Granularity: 1e-7, // 100 ns read resolution
	}

	mc.AddMetahost(&Metahost{
		Name: "CAESAR", Site: "Center of Advanced European Studies and Research, Bonn",
		Arch: "PC cluster, 2-way Intel Xeon 2.6 GHz", Nodes: 32, CPUs: 2,
		Interconnect: "Gigabit Ethernet", Internal: gige, NodeLocal: shm,
		Clock: clock,
		Speed: map[string]float64{
			"":            1.0,
			KernelTraceCG: 1.0, // baseline: CAESAR Xeon
		},
	})
	mc.AddMetahost(&Metahost{
		Name: "FH-BRS", Site: "FH Bonn-Rhein-Sieg, Sankt Augustin",
		Arch: "PC cluster, 4-way AMD Opteron 2 GHz", Nodes: 6, CPUs: 4,
		Interconnect: "usock/Myrinet", Internal: myrinet, NodeLocal: shm,
		Clock: clock,
		Speed: map[string]float64{
			"":            1.8,
			KernelTraceCG: 2.0, // ~2× CAESAR on Trace compute (paper §5)
		},
	})
	mc.AddMetahost(&Metahost{
		Name: "FZJ", Site: "Forschungszentrum Jülich",
		Arch: "Cray XD1, 2-way AMD Opteron 2.2 GHz", Nodes: 60, CPUs: 2,
		Interconnect: "usock/RapidArray", Internal: rapidarray, NodeLocal: shm,
		Clock: clock,
		Speed: map[string]float64{
			"":             1.9,
			KernelTraceCG:  2.1,
			KernelPartrace: 2.2, // XD1 executes the particle code well
		},
	})

	// Pairwise dedicated 10 Gbps optical links. FZJ–FH-BRS calibrated
	// to Table 1; the other pairs scale with rough site distance.
	external := func(lat, sd float64) Link {
		return Link{
			LatencyMean: lat,
			LatencySD:   sd,
			Bandwidth:   1.25e9, // 10 Gbps
			Dedicated:   true,
		}
	}
	mc.DefaultExternal = external(988e-6, 3.86e-6)
	mc.SetExternal(2, 1, external(988e-6, 3.86e-6)) // FZJ – FH-BRS (Table 1)
	mc.SetExternal(2, 0, external(910e-6, 3.5e-6))  // FZJ – CAESAR
	mc.SetExternal(0, 1, external(240e-6, 2.1e-6))  // CAESAR – FH-BRS (nearby sites)
	return mc
}

// VIOLAShared is the VIOLA topology with the external links marked as
// shared instead of dedicated, adding heavy-tailed cross-traffic delay
// spikes. The paper notes that a non-dedicated external network may
// "suffer from interference with unrelated traffic"; this variant
// exercises that regime (and is what makes flat offset measurements
// across the external network markedly less accurate, §4/§5).
func VIOLAShared() *Metacomputer {
	mc := VIOLA()
	degrade := func(l Link) Link {
		l.Dedicated = false
		l.LatencySD *= 4
		l.SpikeProb = 0.06
		l.SpikeScale = 80e-6
		l.SpikeAlpha = 1.3
		return l
	}
	mc.DefaultExternal = degrade(mc.DefaultExternal)
	for i := range mc.Metahosts {
		for j := i + 1; j < len(mc.Metahosts); j++ {
			mc.SetExternal(i, j, degrade(mc.ExternalLink(i, j)))
		}
	}
	return mc
}

// IBMPower builds the homogeneous comparison system of Experiment 2
// (Table 3): a single IBM AIX POWER metahost. Two 16-way nodes host the
// two submodels with 16 processes each.
func IBMPower() *Metacomputer {
	mc := New("IBM-AIX-POWER")
	internal := Link{
		LatencyMean: 28e-6,
		LatencySD:   0.6e-6,
		Bandwidth:   1.5e9, // High Performance Switch class
		Dedicated:   true,
	}
	shm := Link{
		LatencyMean: 1.2e-6,
		LatencySD:   0.08e-6,
		Bandwidth:   3e9,
		Dedicated:   true,
	}
	mc.AddMetahost(&Metahost{
		Name: "IBM-POWER", Site: "Forschungszentrum Jülich",
		Arch: "IBM AIX POWER, 16-way SMP", Nodes: 4, CPUs: 16,
		Interconnect: "HPS", Internal: internal, NodeLocal: shm,
		Clock: ClockSpec{MaxOffset: 1.0, MaxDrift: 1e-5, Granularity: 1e-7},
		Speed: map[string]float64{
			"":             1.9,
			KernelTraceCG:  1.9, // POWER balances the two submodels almost
			KernelPartrace: 2.3, // perfectly; Partrace arrives slightly
			// early at the coupling barrier (a small residual Wait at
			// Barrier in ReadVelFieldFromTrace), while Trace now waits
			// for Partrace's steering messages (paper §5: the steering
			// Late Sender grows in the one-metahost case).
		},
	})
	return mc
}

// ConformanceTestbed builds a fully deterministic metacomputer for the
// analytic-oracle conformance suite (internal/conformance). Every link
// has zero latency jitter, no cross-traffic spikes, and is dedicated,
// so — with route asymmetry disabled in the message-passing layer —
// one-way latencies equal the link means exactly and Cristian's offset
// measurements are error-free. Node clocks keep nonzero offsets and
// drifts but read with zero granularity; the synchronization schemes
// that interpolate two measurements (FlatInterp, Hierarchical) then
// recover the master time base exactly, which is what makes planted
// wait-state severities computable in closed form. The suite must
// still recover them *through* the whole measurement/sync/replay
// pipeline — the clocks are deliberately not trivially perfect.
//
// metahosts selects the federation size (1 for intra-metahost
// scenarios, 2+ for grid scenarios); every metahost has nodes
// single-CPU SMP nodes so each rank gets its own clock.
func ConformanceTestbed(metahosts, nodes int) *Metacomputer {
	mc := New("conformance")
	internal := Link{
		LatencyMean: 20e-6,
		LatencySD:   0,
		Bandwidth:   1e9,
		Dedicated:   true,
	}
	shm := Link{
		LatencyMean: 2e-6,
		LatencySD:   0,
		Bandwidth:   2e9,
		Dedicated:   true,
	}
	clock := ClockSpec{
		MaxOffset:   5e-3, // nonzero: corrections must actually correct
		MaxDrift:    2e-6, // nonzero: interpolation must actually interpolate
		Granularity: 0,    // exact reads keep the closed forms exact
	}
	for i := 0; i < metahosts; i++ {
		mc.AddMetahost(&Metahost{
			Name: fmt.Sprintf("MH%c", 'A'+i), Site: "conformance testbed",
			Arch: "deterministic model", Nodes: nodes, CPUs: 1,
			Interconnect: "det-internal", Internal: internal, NodeLocal: shm,
			Clock: clock,
		})
	}
	mc.DefaultExternal = Link{
		LatencyMean: 500e-6,
		LatencySD:   0,
		Bandwidth:   1.25e9,
		Dedicated:   true,
	}
	return mc
}

// ViolaExperiment1Placement reproduces the three-metahost configuration
// of Table 3: Partrace on the XD1 at FZJ (8 nodes × 2 processes), Trace
// on FH-BRS (2 nodes × 4) and CAESAR (4 nodes × 2). Ranks 0–15 run
// Trace, ranks 16–31 run Partrace, 32 processes in total.
func ViolaExperiment1Placement(mc *Metacomputer) *Placement {
	p := NewPlacement(mc)
	p.MustPlace(1, 0, 2, 4) // Trace on FH-BRS: ranks 0–7
	p.MustPlace(0, 0, 4, 2) // Trace on CAESAR: ranks 8–15
	p.MustPlace(2, 0, 8, 2) // Partrace on XD1/FZJ: ranks 16–31
	return p
}

// IBMExperiment2Placement reproduces the one-metahost configuration of
// Table 3: Trace and Partrace each on one 16-way IBM node.
func IBMExperiment2Placement(mc *Metacomputer) *Placement {
	p := NewPlacement(mc)
	p.MustPlace(0, 0, 1, 16) // Trace: ranks 0–15 on node 0
	p.MustPlace(0, 1, 1, 16) // Partrace: ranks 16–31 on node 1
	return p
}
