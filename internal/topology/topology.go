// Package topology describes a metacomputer: a federation of
// independent, potentially heterogeneous parallel systems ("metahosts")
// joined into a single unit by external network links (Smarr/Catlett).
//
// A topology is pure data — latencies, bandwidths, CPU speeds, clock
// characteristics, and the placement of application processes onto
// metahosts and nodes. The simulation engine (internal/sim), clock
// models (internal/vclock), and message-passing layer (internal/mmpi)
// consume it.
package topology

import (
	"fmt"
	"sort"
	"strings"
)

// LinkClass classifies the network segment between two processes. The
// message-passing layer selects the class from the endpoints' locations
// — the analogue of MetaMPICH's multi-device architecture.
type LinkClass int

// Link classes ordered from fastest to slowest.
const (
	SameNode LinkClass = iota // shared memory within an SMP node
	Internal                  // a metahost's internal interconnect
	External                  // wide-area link between metahosts
)

// String names the link class.
func (c LinkClass) String() string {
	switch c {
	case SameNode:
		return "same-node"
	case Internal:
		return "internal"
	case External:
		return "external"
	default:
		return fmt.Sprintf("LinkClass(%d)", int(c))
	}
}

// Link holds the performance characteristics of one network segment.
// Latencies are one-way seconds; Bandwidth is bytes per second.
type Link struct {
	LatencyMean float64
	LatencySD   float64
	Bandwidth   float64
	// Dedicated links (e.g. VIOLA's reserved optical lightpaths) see no
	// cross traffic. Shared links suffer heavy-tailed delay spikes:
	// with probability SpikeProb a message is delayed by an additional
	// Pareto(SpikeScale, SpikeAlpha) seconds.
	Dedicated  bool
	SpikeProb  float64
	SpikeScale float64
	SpikeAlpha float64
}

// Validate reports whether the link parameters are physically sensible.
func (l Link) Validate() error {
	if l.LatencyMean <= 0 {
		return fmt.Errorf("topology: link latency mean must be > 0 (got %g)", l.LatencyMean)
	}
	if l.LatencySD < 0 {
		return fmt.Errorf("topology: link latency σ must be ≥ 0 (got %g)", l.LatencySD)
	}
	if l.Bandwidth <= 0 {
		return fmt.Errorf("topology: link bandwidth must be > 0 (got %g)", l.Bandwidth)
	}
	if !l.Dedicated && (l.SpikeProb < 0 || l.SpikeProb > 1) {
		return fmt.Errorf("topology: spike probability must be in [0,1] (got %g)", l.SpikeProb)
	}
	return nil
}

// ClockSpec describes the quality of a metahost's node clocks.
type ClockSpec struct {
	// MaxOffset bounds the initial offset of a node clock from true
	// time; actual offsets are drawn uniformly from [-MaxOffset, +MaxOffset].
	MaxOffset float64
	// MaxDrift bounds the relative drift rate (dimensionless, e.g. 1e-5
	// for 10 µs/s); actual drifts are uniform in [-MaxDrift, +MaxDrift].
	MaxDrift float64
	// Granularity is the clock read resolution in seconds (0 = perfect).
	Granularity float64
	// Synchronized metahosts provide hardware clock synchronization
	// across nodes (e.g. BlueGene); all nodes then share one clock and
	// the intra-metahost offset measurement step is omitted.
	Synchronized bool
}

// Metahost is one constituent parallel system of a metacomputer.
type Metahost struct {
	ID    int    // unique numeric identifier (the env-variable id of §4)
	Name  string // human-readable name used in analysis displays
	Site  string // organization / location, for documentation only
	Arch  string // architecture label, e.g. "Cray XD1, 2-way Opteron 2.2 GHz"
	Nodes int    // number of SMP nodes
	CPUs  int    // CPUs per node

	Interconnect string // internal network label, e.g. "usock/RapidArray"
	Internal     Link   // internal network characteristics
	NodeLocal    Link   // same-node (shared-memory) characteristics

	Clock ClockSpec

	// Speed maps a compute-kernel label to a relative execution-speed
	// factor (work units per second, relative to a nominal 1.0
	// machine). A kernel not present falls back to the "" entry, then
	// to 1.0. Per-kernel factors let heterogeneous architectures favour
	// different submodels, as observed in the paper (§5: Trace compute
	// ran ~2× faster on FH-BRS than on CAESAR).
	Speed map[string]float64
}

// SpeedFor returns the execution-speed factor for the given kernel.
func (m *Metahost) SpeedFor(kernel string) float64 {
	if m.Speed != nil {
		if f, ok := m.Speed[kernel]; ok {
			return f
		}
		if f, ok := m.Speed[""]; ok {
			return f
		}
	}
	return 1.0
}

// TotalCPUs returns Nodes × CPUs.
func (m *Metahost) TotalCPUs() int { return m.Nodes * m.CPUs }

// pairKey orders a metahost-id pair canonically for map lookup.
type pairKey struct{ a, b int }

func makePair(a, b int) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// Metacomputer is the full federation description.
type Metacomputer struct {
	Name      string
	Metahosts []*Metahost

	// DefaultExternal characterizes inter-metahost links with no
	// per-pair override.
	DefaultExternal Link
	external        map[pairKey]Link
}

// New creates an empty metacomputer with the given name and a sensible
// default external link (1 ms, 1 Gbps, shared).
func New(name string) *Metacomputer {
	return &Metacomputer{
		Name: name,
		DefaultExternal: Link{
			LatencyMean: 1e-3,
			LatencySD:   5e-6,
			Bandwidth:   125e6,
		},
		external: make(map[pairKey]Link),
	}
}

// AddMetahost appends a metahost, assigning the next free ID, and
// returns it for further configuration.
func (mc *Metacomputer) AddMetahost(m *Metahost) *Metahost {
	m.ID = len(mc.Metahosts)
	mc.Metahosts = append(mc.Metahosts, m)
	return m
}

// SetExternal overrides the link characteristics between two metahosts
// (order-insensitive).
func (mc *Metacomputer) SetExternal(a, b int, l Link) {
	if mc.external == nil {
		mc.external = make(map[pairKey]Link)
	}
	mc.external[makePair(a, b)] = l
}

// ExternalLink returns the link between two distinct metahosts.
func (mc *Metacomputer) ExternalLink(a, b int) Link {
	if l, ok := mc.external[makePair(a, b)]; ok {
		return l
	}
	return mc.DefaultExternal
}

// Metahost returns the metahost with the given id, or nil.
func (mc *Metacomputer) Metahost(id int) *Metahost {
	if id < 0 || id >= len(mc.Metahosts) {
		return nil
	}
	return mc.Metahosts[id]
}

// Validate checks structural consistency of the whole description.
func (mc *Metacomputer) Validate() error {
	if len(mc.Metahosts) == 0 {
		return fmt.Errorf("topology: metacomputer %q has no metahosts", mc.Name)
	}
	seen := make(map[string]bool)
	for i, m := range mc.Metahosts {
		if m.ID != i {
			return fmt.Errorf("topology: metahost %q has id %d, want %d", m.Name, m.ID, i)
		}
		if m.Name == "" {
			return fmt.Errorf("topology: metahost %d has empty name", i)
		}
		if seen[m.Name] {
			return fmt.Errorf("topology: duplicate metahost name %q", m.Name)
		}
		seen[m.Name] = true
		if m.Nodes <= 0 || m.CPUs <= 0 {
			return fmt.Errorf("topology: metahost %q must have nodes > 0 and cpus > 0", m.Name)
		}
		if err := m.Internal.Validate(); err != nil {
			return fmt.Errorf("metahost %q internal: %w", m.Name, err)
		}
		if err := m.NodeLocal.Validate(); err != nil {
			return fmt.Errorf("metahost %q node-local: %w", m.Name, err)
		}
	}
	if err := mc.DefaultExternal.Validate(); err != nil {
		return fmt.Errorf("default external: %w", err)
	}
	for k, l := range mc.external {
		if mc.Metahost(k.a) == nil || mc.Metahost(k.b) == nil {
			return fmt.Errorf("topology: external link references unknown metahost pair (%d,%d)", k.a, k.b)
		}
		if err := l.Validate(); err != nil {
			return fmt.Errorf("external link (%d,%d): %w", k.a, k.b, err)
		}
	}
	return nil
}

// Loc places a process in the system hierarchy: which metahost, which
// node within it, and which CPU slot on that node. This is the
// "machine/node/process" part of the event-location tuple of §3.
type Loc struct {
	Metahost int
	Node     int
	CPU      int
}

// String renders the location as "mh/node/cpu".
func (l Loc) String() string {
	return fmt.Sprintf("%d/%d/%d", l.Metahost, l.Node, l.CPU)
}

// Classify returns the link class connecting two locations.
func Classify(a, b Loc) LinkClass {
	if a.Metahost != b.Metahost {
		return External
	}
	if a.Node != b.Node {
		return Internal
	}
	return SameNode
}

// Placement assigns every global MPI rank a location. Ranks are dense,
// 0..N-1, in the order they were placed.
type Placement struct {
	mc    *Metacomputer
	Ranks []Loc
	used  map[Loc]int // occupancy per (metahost,node,cpu) slot
}

// NewPlacement starts an empty placement on mc.
func NewPlacement(mc *Metacomputer) *Placement {
	return &Placement{mc: mc, used: make(map[Loc]int)}
}

// Metacomputer returns the topology this placement refers to.
func (p *Placement) Metacomputer() *Metacomputer { return p.mc }

// N returns the number of placed ranks.
func (p *Placement) N() int { return len(p.Ranks) }

// Place assigns the next `nodes × perNode` ranks to the given metahost,
// filling nodes starting at firstNode, perNode processes per node (CPU
// slots 0..perNode-1). It returns the range of global ranks created.
func (p *Placement) Place(metahost, firstNode, nodes, perNode int) (lo, hi int, err error) {
	m := p.mc.Metahost(metahost)
	if m == nil {
		return 0, 0, fmt.Errorf("topology: unknown metahost id %d", metahost)
	}
	if firstNode < 0 || firstNode+nodes > m.Nodes {
		return 0, 0, fmt.Errorf("topology: metahost %q has %d nodes, cannot place on nodes [%d,%d)",
			m.Name, m.Nodes, firstNode, firstNode+nodes)
	}
	if perNode > m.CPUs {
		return 0, 0, fmt.Errorf("topology: metahost %q has %d CPUs per node, requested %d per node",
			m.Name, m.CPUs, perNode)
	}
	lo = len(p.Ranks)
	for n := firstNode; n < firstNode+nodes; n++ {
		for c := 0; c < perNode; c++ {
			loc := Loc{Metahost: metahost, Node: n, CPU: c}
			if p.used[loc] > 0 {
				return 0, 0, fmt.Errorf("topology: slot %v already occupied", loc)
			}
			p.used[loc]++
			p.Ranks = append(p.Ranks, loc)
		}
	}
	return lo, len(p.Ranks), nil
}

// MustPlace is Place but panics on error; convenient in presets whose
// arguments are compile-time constants.
func (p *Placement) MustPlace(metahost, firstNode, nodes, perNode int) (lo, hi int) {
	lo, hi, err := p.Place(metahost, firstNode, nodes, perNode)
	if err != nil {
		panic(err)
	}
	return lo, hi
}

// Loc returns the location of a global rank.
func (p *Placement) Loc(rank int) Loc { return p.Ranks[rank] }

// RanksOn returns the global ranks placed on the given metahost, in
// ascending order.
func (p *Placement) RanksOn(metahost int) []int {
	var out []int
	for r, loc := range p.Ranks {
		if loc.Metahost == metahost {
			out = append(out, r)
		}
	}
	return out
}

// MetahostsUsed returns the ids of metahosts that host at least one
// rank, ascending.
func (p *Placement) MetahostsUsed() []int {
	set := make(map[int]bool)
	for _, loc := range p.Ranks {
		set[loc.Metahost] = true
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Validate checks that every rank's location exists in the topology.
func (p *Placement) Validate() error {
	if len(p.Ranks) == 0 {
		return fmt.Errorf("topology: empty placement")
	}
	for r, loc := range p.Ranks {
		m := p.mc.Metahost(loc.Metahost)
		if m == nil {
			return fmt.Errorf("topology: rank %d on unknown metahost %d", r, loc.Metahost)
		}
		if loc.Node < 0 || loc.Node >= m.Nodes {
			return fmt.Errorf("topology: rank %d on node %d of metahost %q (has %d nodes)",
				r, loc.Node, m.Name, m.Nodes)
		}
		if loc.CPU < 0 || loc.CPU >= m.CPUs {
			return fmt.Errorf("topology: rank %d on cpu %d of metahost %q (has %d cpus/node)",
				r, loc.CPU, m.Name, m.CPUs)
		}
	}
	return nil
}

// Describe renders a human-readable schematic of the metacomputer,
// reproducing the information content of the paper's Figure 2
// (metacomputer schematic) and Figure 5 (VIOLA topology).
func (mc *Metacomputer) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Metacomputer %q: %d metahosts\n", mc.Name, len(mc.Metahosts))
	for _, m := range mc.Metahosts {
		fmt.Fprintf(&b, "  [%d] %-10s %s\n", m.ID, m.Name, m.Site)
		fmt.Fprintf(&b, "      %d nodes x %d CPUs  (%s)\n", m.Nodes, m.CPUs, m.Arch)
		fmt.Fprintf(&b, "      internal %-18s lat %8.1f us (sd %.3f us)  bw %6.2f Gbps\n",
			m.Interconnect,
			m.Internal.LatencyMean*1e6, m.Internal.LatencySD*1e6, m.Internal.Bandwidth*8/1e9)
	}
	b.WriteString("  external links:\n")
	for i := 0; i < len(mc.Metahosts); i++ {
		for j := i + 1; j < len(mc.Metahosts); j++ {
			l := mc.ExternalLink(i, j)
			kind := "shared"
			if l.Dedicated {
				kind = "dedicated"
			}
			fmt.Fprintf(&b, "      %s -- %s: lat %8.1f us (sd %.3f us)  bw %6.2f Gbps  (%s)\n",
				mc.Metahosts[i].Name, mc.Metahosts[j].Name,
				l.LatencyMean*1e6, l.LatencySD*1e6, l.Bandwidth*8/1e9, kind)
		}
	}
	return b.String()
}
