package topology

import (
	"strings"
	"testing"
)

func TestLinkClassString(t *testing.T) {
	for c, want := range map[LinkClass]string{
		SameNode: "same-node", Internal: "internal", External: "external",
		LinkClass(9): "LinkClass(9)",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", int(c), c.String())
		}
	}
}

func TestLinkValidate(t *testing.T) {
	good := Link{LatencyMean: 1e-5, LatencySD: 1e-7, Bandwidth: 1e9}
	if err := good.Validate(); err != nil {
		t.Fatalf("good link invalid: %v", err)
	}
	cases := []Link{
		{LatencyMean: 0, Bandwidth: 1e9},
		{LatencyMean: 1e-5, LatencySD: -1, Bandwidth: 1e9},
		{LatencyMean: 1e-5, Bandwidth: 0},
		{LatencyMean: 1e-5, Bandwidth: 1e9, SpikeProb: 1.5},
	}
	for i, l := range cases {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: bad link validated", i)
		}
	}
	// Spike probability is ignored on dedicated links.
	ded := Link{LatencyMean: 1e-5, Bandwidth: 1e9, Dedicated: true, SpikeProb: 7}
	if err := ded.Validate(); err != nil {
		t.Errorf("dedicated link with junk spike prob must validate: %v", err)
	}
}

func TestClassify(t *testing.T) {
	a := Loc{Metahost: 0, Node: 0, CPU: 0}
	b := Loc{Metahost: 0, Node: 0, CPU: 1}
	c := Loc{Metahost: 0, Node: 1, CPU: 0}
	d := Loc{Metahost: 1, Node: 0, CPU: 0}
	if Classify(a, b) != SameNode {
		t.Errorf("same node misclassified")
	}
	if Classify(a, c) != Internal {
		t.Errorf("internal misclassified")
	}
	if Classify(a, d) != External {
		t.Errorf("external misclassified")
	}
}

func TestSpeedForFallbacks(t *testing.T) {
	m := &Metahost{Speed: map[string]float64{"": 1.5, "cg": 2.0}}
	if m.SpeedFor("cg") != 2.0 {
		t.Errorf("kernel-specific speed not used")
	}
	if m.SpeedFor("other") != 1.5 {
		t.Errorf("default entry not used")
	}
	empty := &Metahost{}
	if empty.SpeedFor("x") != 1.0 {
		t.Errorf("nil speed map must yield 1.0")
	}
}

func TestPlacementPlaceAndLookup(t *testing.T) {
	mc := VIOLA()
	p := NewPlacement(mc)
	lo, hi, err := p.Place(1, 0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != 8 {
		t.Fatalf("range [%d,%d), want [0,8)", lo, hi)
	}
	if got := p.Loc(5); got != (Loc{Metahost: 1, Node: 1, CPU: 1}) {
		t.Fatalf("Loc(5) = %v", got)
	}
	if n := p.N(); n != 8 {
		t.Fatalf("N = %d", n)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementErrors(t *testing.T) {
	mc := VIOLA()
	p := NewPlacement(mc)
	if _, _, err := p.Place(99, 0, 1, 1); err == nil {
		t.Errorf("unknown metahost accepted")
	}
	if _, _, err := p.Place(1, 5, 2, 1); err == nil {
		t.Errorf("node range overflow accepted")
	}
	if _, _, err := p.Place(1, 0, 1, 99); err == nil {
		t.Errorf("per-node overflow accepted")
	}
	p.MustPlace(1, 0, 1, 2)
	if _, _, err := p.Place(1, 0, 1, 2); err == nil {
		t.Errorf("double occupancy accepted")
	}
	empty := NewPlacement(mc)
	if err := empty.Validate(); err == nil {
		t.Errorf("empty placement validated")
	}
}

func TestRanksOnAndMetahostsUsed(t *testing.T) {
	mc := VIOLA()
	p := ViolaExperiment1Placement(mc)
	if p.N() != 32 {
		t.Fatalf("experiment 1 has %d ranks, want 32", p.N())
	}
	if got := p.RanksOn(1); len(got) != 8 || got[0] != 0 || got[7] != 7 {
		t.Fatalf("FH-BRS ranks %v", got)
	}
	if got := p.RanksOn(0); len(got) != 8 || got[0] != 8 {
		t.Fatalf("CAESAR ranks %v", got)
	}
	if got := p.RanksOn(2); len(got) != 16 || got[0] != 16 {
		t.Fatalf("FZJ ranks %v", got)
	}
	used := p.MetahostsUsed()
	if len(used) != 3 || used[0] != 0 || used[2] != 2 {
		t.Fatalf("metahosts used %v", used)
	}
}

func TestVIOLAMatchesTable1Parameters(t *testing.T) {
	mc := VIOLA()
	if err := mc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(mc.Metahosts) != 3 {
		t.Fatalf("VIOLA has %d metahosts", len(mc.Metahosts))
	}
	fzj := mc.Metahosts[2]
	if fzj.Name != "FZJ" || fzj.Nodes != 60 || fzj.CPUs != 2 {
		t.Errorf("FZJ misconfigured: %+v", fzj)
	}
	if fzj.Internal.LatencyMean != 21.5e-6 {
		t.Errorf("FZJ internal latency %g, want 21.5 us (Table 1)", fzj.Internal.LatencyMean)
	}
	ext := mc.ExternalLink(2, 1)
	if ext.LatencyMean != 988e-6 || ext.LatencySD != 3.86e-6 {
		t.Errorf("FZJ-FHBRS external %g/%g, want 988/3.86 us (Table 1)", ext.LatencyMean, ext.LatencySD)
	}
	brs := mc.Metahosts[1]
	if brs.Internal.LatencyMean != 44.4e-6 {
		t.Errorf("FH-BRS internal %g, want 44.4 us (Table 1)", brs.Internal.LatencyMean)
	}
	// The paper's central heterogeneity: Trace compute ~2x faster on
	// FH-BRS than on CAESAR.
	if r := brs.SpeedFor(KernelTraceCG) / mc.Metahosts[0].SpeedFor(KernelTraceCG); r != 2.0 {
		t.Errorf("FH-BRS/CAESAR Trace speed ratio %g, want 2.0", r)
	}
}

func TestExternalLinkSymmetryAndOverride(t *testing.T) {
	mc := VIOLA()
	if mc.ExternalLink(1, 2) != mc.ExternalLink(2, 1) {
		t.Errorf("external link lookup not order-insensitive")
	}
	l := Link{LatencyMean: 5e-4, LatencySD: 1e-6, Bandwidth: 1e9}
	mc.SetExternal(0, 2, l)
	if mc.ExternalLink(2, 0) != l {
		t.Errorf("override not returned")
	}
}

func TestVIOLASharedDegradesExternalOnly(t *testing.T) {
	ded := VIOLA()
	sh := VIOLAShared()
	if err := sh.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if sh.Metahosts[i].Internal != ded.Metahosts[i].Internal {
			t.Errorf("internal link of %s changed", sh.Metahosts[i].Name)
		}
		for j := i + 1; j < 3; j++ {
			l := sh.ExternalLink(i, j)
			if l.Dedicated {
				t.Errorf("external link (%d,%d) still dedicated", i, j)
			}
			if l.SpikeProb <= 0 {
				t.Errorf("external link (%d,%d) has no cross traffic", i, j)
			}
		}
	}
}

func TestIBMPowerExperiment2(t *testing.T) {
	mc := IBMPower()
	if err := mc.Validate(); err != nil {
		t.Fatal(err)
	}
	p := IBMExperiment2Placement(mc)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.N() != 32 {
		t.Fatalf("experiment 2 has %d ranks", p.N())
	}
	// Table 3: one node with 16 processes per submodel.
	for r := 0; r < 16; r++ {
		if p.Loc(r).Node != 0 {
			t.Fatalf("Trace rank %d on node %d", r, p.Loc(r).Node)
		}
		if p.Loc(16+r).Node != 1 {
			t.Fatalf("Partrace rank %d on node %d", 16+r, p.Loc(16+r).Node)
		}
	}
	if len(p.MetahostsUsed()) != 1 {
		t.Fatalf("experiment 2 uses %d metahosts", len(p.MetahostsUsed()))
	}
}

func TestMetacomputerValidateCatchesCorruption(t *testing.T) {
	mc := VIOLA()
	mc.Metahosts[1].Name = "CAESAR" // duplicate
	if err := mc.Validate(); err == nil {
		t.Errorf("duplicate name validated")
	}
	mc = VIOLA()
	mc.Metahosts[0].Nodes = 0
	if err := mc.Validate(); err == nil {
		t.Errorf("zero nodes validated")
	}
	mc = VIOLA()
	mc.Metahosts[2].Internal.Bandwidth = -1
	if err := mc.Validate(); err == nil {
		t.Errorf("negative bandwidth validated")
	}
	empty := New("empty")
	if err := empty.Validate(); err == nil {
		t.Errorf("empty metacomputer validated")
	}
}

func TestDescribeMentionsEveryMetahostAndLink(t *testing.T) {
	out := VIOLA().Describe()
	for _, want := range []string{"CAESAR", "FH-BRS", "FZJ", "external links",
		"RapidArray", "988.0 us", "10.00 Gbps"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe() missing %q:\n%s", want, out)
		}
	}
}

func TestLocString(t *testing.T) {
	if got := (Loc{Metahost: 1, Node: 2, CPU: 3}).String(); got != "1/2/3" {
		t.Errorf("Loc.String() = %q", got)
	}
}
