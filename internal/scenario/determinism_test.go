package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"testing"

	"metascope"
	"metascope/internal/archive"
	"metascope/internal/trace"
)

// archiveDigest hashes every file of an experiment's archive, in
// (metahost, path) order, into one hex digest.
func archiveDigest(t *testing.T, e *metascope.Experiment) string {
	t.Helper()
	h := sha256.New()
	for _, mh := range e.Place.MetahostsUsed() {
		fs := e.Mounts().For(mh)
		files, err := fs.List(e.ArchiveDir)
		if err != nil {
			t.Fatalf("listing metahost %d: %v", mh, err)
		}
		sort.Strings(files)
		for _, f := range files {
			data, err := archive.ReadFile(fs, e.ArchiveDir+"/"+f)
			if err != nil {
				t.Fatalf("reading %s: %v", f, err)
			}
			fmt.Fprintf(h, "%d/%s/%d\n", mh, f, len(data))
			h.Write(data)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func runLibrary(t *testing.T, name, title string, format trace.Format, seed int64) *metascope.Experiment {
	t.Helper()
	p, err := LoadLibrary(name)
	if err != nil {
		t.Fatal(err)
	}
	p.Spec.Format = format
	e, err := p.Run(title, seed)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestArchiveDeterminismAcrossGOMAXPROCS runs the same scenario and
// seed under GOMAXPROCS=1 and under the test default, requiring
// byte-identical archives: the simulation and trace writers must be
// free of scheduling-dependent output.
func TestArchiveDeterminismAcrossGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	d1 := archiveDigest(t, runLibrary(t, "halo2d", "det-gmp", trace.FormatV2, 5))
	runtime.GOMAXPROCS(old)
	dN := archiveDigest(t, runLibrary(t, "halo2d", "det-gmp", trace.FormatV2, 5))
	if d1 != dN {
		t.Fatalf("archive digest differs across GOMAXPROCS: %s vs %s", d1, dN)
	}
}

// TestArchiveDeterminismAcrossFormats runs the same scenario and seed
// once per trace format and converts the v1 archive to v2 the way
// mttrace -convert does (decode, re-encode); the converted bytes must
// equal the directly generated v2 archive, file by file.
func TestArchiveDeterminismAcrossFormats(t *testing.T) {
	t.Parallel()
	e1 := runLibrary(t, "masterworker", "det-fmt", trace.FormatV1, 9)
	e2 := runLibrary(t, "masterworker", "det-fmt", trace.FormatV2, 9)
	p, err := LoadLibrary("masterworker")
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p.N(); r++ {
		loc := e1.Place.Loc(r)
		path := archive.TraceFile(e1.ArchiveDir, r)
		v1, err := archive.ReadFile(e1.Mounts().For(loc.Metahost), path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.DecodeBytes(v1)
		if err != nil {
			t.Fatalf("rank %d: decoding v1: %v", r, err)
		}
		var conv bytes.Buffer
		if err := tr.EncodeFormat(&conv, trace.FormatV2); err != nil {
			t.Fatalf("rank %d: re-encoding: %v", r, err)
		}
		v2, err := archive.ReadFile(e2.Mounts().For(loc.Metahost), path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(conv.Bytes(), v2) {
			t.Errorf("rank %d: converted v1 archive differs from direct v2 (%d vs %d bytes)",
				r, conv.Len(), len(v2))
		}
	}
}

// TestRunDeterminismSameSeed is the base case: two runs of the same
// compiled program and seed produce byte-identical archives.
func TestRunDeterminismSameSeed(t *testing.T) {
	t.Parallel()
	a := archiveDigest(t, runLibrary(t, "amr", "det-seed", trace.FormatV2, 3))
	b := archiveDigest(t, runLibrary(t, "amr", "det-seed", trace.FormatV2, 3))
	if a != b {
		t.Fatalf("same scenario, same seed, different archives: %s vs %s", a, b)
	}
	c := archiveDigest(t, runLibrary(t, "amr", "det-seed", trace.FormatV2, 4))
	if a == c {
		t.Fatal("different experiment seeds produced identical archives; the digest is not sensitive")
	}
}
