package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The scenario language is an indentation-based YAML subset: block
// maps (`key: value` / `key:` + indented block), block lists (`- `
// items, including inline `- key: value` map starts), single-line flow
// collections (`{k: v}`, `[a, b]`), double- and single-quoted scalars,
// and `#` comments. There are no anchors, aliases, tags, or multi-line
// scalars — every document is a finite tree by construction. A
// document whose first significant byte is `{` is parsed as JSON
// instead, so Go-struct JSON works unchanged.

type nodeKind int

const (
	scalarNode nodeKind = iota
	mapNode
	listNode
)

// node is the parsed generic document tree the strict decoder walks.
type node struct {
	line    int
	kind    nodeKind
	scalar  string
	quoted  bool // scalar came from a quoted string (always a string)
	entries []mapEntry
	items   []*node
}

type mapEntry struct {
	key     string
	keyLine int
	val     *node
}

func (n *node) get(key string) *node {
	for _, e := range n.entries {
		if e.key == key {
			return e.val
		}
	}
	return nil
}

// isNull reports an empty value (a `key:` with no value or block).
func (n *node) isNull() bool {
	return n.kind == scalarNode && !n.quoted && n.scalar == ""
}

// parseTree parses a scenario document into a node tree.
func parseTree(src []byte) (*node, error) {
	text := string(src)
	if i := firstSignificant(text); i >= 0 && text[i] == '{' {
		return parseJSONTree(text)
	}
	lines, err := splitLines(text)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, errAt(0, "", "empty document")
	}
	p := &parser{lines: lines}
	root, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, errAt(l.no, "", "unexpected content at indent %d after the top-level block", l.indent)
	}
	if root.kind != mapNode {
		return nil, errAt(root.line, "", "top-level value must be a mapping")
	}
	return root, nil
}

// firstSignificant returns the index of the first byte outside
// whitespace and comment lines, or -1.
func firstSignificant(text string) int {
	inComment := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case c == '\n':
			inComment = false
		case inComment:
		case c == '#':
			inComment = true
		case c != ' ' && c != '\t' && c != '\r':
			return i
		}
	}
	return -1
}

type lineRec struct {
	no     int
	indent int
	text   string
}

// splitLines preprocesses the document: strips comments (quote-aware)
// and blank lines, measures indentation, and rejects tabs in it.
func splitLines(text string) ([]lineRec, error) {
	var out []lineRec
	for no, raw := range strings.Split(text, "\n") {
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, errAt(no+1, "", "tab indentation is not supported; use spaces")
		}
		content := stripComment(line[indent:])
		content = strings.TrimRight(content, " ")
		if content == "" {
			continue
		}
		out = append(out, lineRec{no: no + 1, indent: indent, text: content})
	}
	return out, nil
}

// stripComment removes a trailing `#` comment that is not inside a
// quoted string. A `#` must start the content or follow whitespace to
// count as a comment, matching YAML.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

type parser struct {
	lines []lineRec
	pos   int
}

func (p *parser) cur() *lineRec {
	if p.pos >= len(p.lines) {
		return nil
	}
	return &p.lines[p.pos]
}

// parseBlock parses the map or list starting at the current line,
// whose indent defines the block.
func (p *parser) parseBlock() (*node, error) {
	l := p.cur()
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseList(l.indent)
	}
	return p.parseMap(l.indent)
}

func (p *parser) parseMap(indent int) (*node, error) {
	n := &node{line: p.cur().no, kind: mapNode}
	seen := make(map[string]int)
	for {
		l := p.cur()
		if l == nil || l.indent < indent {
			return n, nil
		}
		if l.indent > indent {
			return nil, errAt(l.no, "", "unexpected indent %d (enclosing block is at %d)", l.indent, indent)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, errAt(l.no, "", "unexpected list item inside a mapping")
		}
		key, rest, err := splitKey(l.text, l.no)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[key]; dup {
			return nil, errAt(l.no, "", "duplicate key %q (first on line %d)", key, prev)
		}
		seen[key] = l.no
		p.pos++
		var val *node
		if rest != "" {
			val, err = parseInline(rest, l.no)
			if err != nil {
				return nil, err
			}
		} else if nl := p.cur(); nl != nil && nl.indent > indent {
			val, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		} else {
			val = &node{line: l.no, kind: scalarNode}
		}
		n.entries = append(n.entries, mapEntry{key: key, keyLine: l.no, val: val})
	}
}

func (p *parser) parseList(indent int) (*node, error) {
	n := &node{line: p.cur().no, kind: listNode}
	for {
		l := p.cur()
		if l == nil || l.indent < indent {
			return n, nil
		}
		if l.indent > indent {
			return nil, errAt(l.no, "", "unexpected indent %d (enclosing list is at %d)", l.indent, indent)
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			return n, nil
		}
		var item *node
		var err error
		switch {
		case l.text == "-":
			p.pos++
			if nl := p.cur(); nl != nil && nl.indent > indent {
				item, err = p.parseBlock()
			} else {
				item = &node{line: l.no, kind: scalarNode}
			}
		case isMapEntryStart(l.text[2:]):
			// `- key: value` opens a map whose keys sit two columns in
			// (dash plus space); rewrite the line and parse the map.
			l.indent += 2
			l.text = l.text[2:]
			item, err = p.parseMap(l.indent)
		default:
			item, err = parseInline(l.text[2:], l.no)
			p.pos++
		}
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
	}
}

// splitKey splits `key: rest` (or `key:`), validating the key token.
func splitKey(s string, line int) (key, rest string, err error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return "", "", errAt(line, "", "expected `key: value`, got %q", s)
	}
	key = s[:i]
	if !validKey(key) {
		return "", "", errAt(line, "", "invalid key %q (want letters, digits, _ or -)", key)
	}
	rest = strings.TrimSpace(s[i+1:])
	if rest != "" && s[i+1] != ' ' {
		return "", "", errAt(line, "", "missing space after %q:", key)
	}
	return key, rest, nil
}

func validKey(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// isMapEntryStart reports whether a list-item remainder opens a map
// entry (`key:` followed by space or end of line, key valid).
func isMapEntryStart(s string) bool {
	i := strings.IndexByte(s, ':')
	if i <= 0 || !validKey(s[:i]) {
		return false
	}
	return i+1 == len(s) || s[i+1] == ' '
}

// parseInline parses a single-line value: flow map, flow list, or
// scalar.
func parseInline(s string, line int) (*node, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "{"):
		n, rest, err := parseFlow(s, line)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, errAt(line, "", "trailing content %q after flow mapping", strings.TrimSpace(rest))
		}
		return n, nil
	case strings.HasPrefix(s, "["):
		n, rest, err := parseFlow(s, line)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, errAt(line, "", "trailing content %q after flow list", strings.TrimSpace(rest))
		}
		return n, nil
	default:
		return parseScalar(s, line)
	}
}

// parseFlow parses a `{...}` or `[...]` flow collection at the start
// of s, returning the unconsumed remainder.
func parseFlow(s string, line int) (*node, string, error) {
	if strings.HasPrefix(s, "{") {
		n := &node{line: line, kind: mapNode}
		rest := strings.TrimSpace(s[1:])
		seen := make(map[string]bool)
		if strings.HasPrefix(rest, "}") {
			return n, rest[1:], nil
		}
		for {
			i := strings.IndexByte(rest, ':')
			if i < 0 {
				return nil, "", errAt(line, "", "flow mapping entry %q has no colon", rest)
			}
			key := strings.TrimSpace(rest[:i])
			if !validKey(key) {
				return nil, "", errAt(line, "", "invalid key %q in flow mapping", key)
			}
			if seen[key] {
				return nil, "", errAt(line, "", "duplicate key %q in flow mapping", key)
			}
			seen[key] = true
			val, r2, err := parseFlowValue(strings.TrimSpace(rest[i+1:]), line)
			if err != nil {
				return nil, "", err
			}
			n.entries = append(n.entries, mapEntry{key: key, keyLine: line, val: val})
			r2 = strings.TrimSpace(r2)
			switch {
			case strings.HasPrefix(r2, ","):
				rest = strings.TrimSpace(r2[1:])
			case strings.HasPrefix(r2, "}"):
				return n, r2[1:], nil
			default:
				return nil, "", errAt(line, "", "flow mapping missing `,` or `}` near %q", r2)
			}
		}
	}
	// "["
	n := &node{line: line, kind: listNode}
	rest := strings.TrimSpace(s[1:])
	if strings.HasPrefix(rest, "]") {
		return n, rest[1:], nil
	}
	for {
		val, r2, err := parseFlowValue(rest, line)
		if err != nil {
			return nil, "", err
		}
		n.items = append(n.items, val)
		r2 = strings.TrimSpace(r2)
		switch {
		case strings.HasPrefix(r2, ","):
			rest = strings.TrimSpace(r2[1:])
		case strings.HasPrefix(r2, "]"):
			return n, r2[1:], nil
		default:
			return nil, "", errAt(line, "", "flow list missing `,` or `]` near %q", r2)
		}
	}
}

// parseFlowValue parses one value inside a flow collection and
// returns the remainder (starting at the delimiter).
func parseFlowValue(s string, line int) (*node, string, error) {
	if strings.HasPrefix(s, "{") || strings.HasPrefix(s, "[") {
		return parseFlow(s, line)
	}
	if strings.HasPrefix(s, `"`) || strings.HasPrefix(s, "'") {
		raw, rest, err := scanQuoted(s, line)
		if err != nil {
			return nil, "", err
		}
		return &node{line: line, kind: scalarNode, scalar: raw, quoted: true}, rest, nil
	}
	end := len(s)
	for i := 0; i < len(s); i++ {
		if s[i] == ',' || s[i] == '}' || s[i] == ']' {
			end = i
			break
		}
	}
	n, err := parseScalar(strings.TrimSpace(s[:end]), line)
	if err != nil {
		return nil, "", err
	}
	return n, s[end:], nil
}

// scanQuoted consumes a quoted string at the start of s.
func scanQuoted(s string, line int) (value, rest string, err error) {
	quote := s[0]
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case c == quote:
			return b.String(), s[i+1:], nil
		case c == '\\' && quote == '"':
			i++
			if i >= len(s) {
				return "", "", errAt(line, "", "unterminated escape in quoted string")
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\', '/':
				b.WriteByte(s[i])
			default:
				return "", "", errAt(line, "", `unsupported escape \%c`, s[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", errAt(line, "", "unterminated quoted string")
}

func parseScalar(s string, line int) (*node, error) {
	if strings.HasPrefix(s, `"`) || strings.HasPrefix(s, "'") {
		v, rest, err := scanQuoted(s, line)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, errAt(line, "", "trailing content %q after quoted string", strings.TrimSpace(rest))
		}
		return &node{line: line, kind: scalarNode, scalar: v, quoted: true}, nil
	}
	if strings.ContainsAny(s, "{}[]") {
		return nil, errAt(line, "", "flow characters in unquoted scalar %q (quote it, or fix the flow syntax)", s)
	}
	return &node{line: line, kind: scalarNode, scalar: s}, nil
}

// parseJSONTree converts a JSON document into the same node tree the
// YAML path produces. Map keys are visited in sorted order so error
// reporting is deterministic; JSON has no line information.
func parseJSONTree(text string) (*node, error) {
	var v interface{}
	if err := json.Unmarshal([]byte(text), &v); err != nil {
		return nil, errAt(0, "", "invalid JSON: %v", err)
	}
	n, err := jsonNode(v)
	if err != nil {
		return nil, err
	}
	if n.kind != mapNode {
		return nil, errAt(0, "", "top-level value must be an object")
	}
	return n, nil
}

func jsonNode(v interface{}) (*node, error) {
	switch x := v.(type) {
	case nil:
		return &node{kind: scalarNode}, nil
	case bool:
		return &node{kind: scalarNode, scalar: strconv.FormatBool(x)}, nil
	case float64:
		return &node{kind: scalarNode, scalar: strconv.FormatFloat(x, 'g', -1, 64)}, nil
	case string:
		return &node{kind: scalarNode, scalar: x, quoted: true}, nil
	case []interface{}:
		n := &node{kind: listNode}
		for _, it := range x {
			c, err := jsonNode(it)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, c)
		}
		return n, nil
	case map[string]interface{}:
		n := &node{kind: mapNode}
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !validKey(k) {
				return nil, errAt(0, "", fmt.Sprintf("invalid key %q (want letters, digits, _ or -)", k))
			}
			c, err := jsonNode(x[k])
			if err != nil {
				return nil, err
			}
			n.entries = append(n.entries, mapEntry{key: k, val: c})
		}
		return n, nil
	default:
		return nil, errAt(0, "", fmt.Sprintf("unsupported JSON value %T", v))
	}
}
