package scenario

import (
	"errors"
	"strings"
	"testing"
)

func TestParseMinimalYAML(t *testing.T) {
	t.Parallel()
	sp, err := Parse([]byte("kernel: halo1d\nranks: 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kernel != KernelHalo1D || sp.Ranks != 4 {
		t.Fatalf("got kernel=%q ranks=%d", sp.Kernel, sp.Ranks)
	}
	if sp.Name != "halo1d" {
		t.Errorf("default name = %q, want kernel name", sp.Name)
	}
	if sp.Iterations != 2 || sp.Seed != 1 || sp.Bytes != 2048 {
		t.Errorf("defaults: iterations=%d seed=%d bytes=%d", sp.Iterations, sp.Seed, sp.Bytes)
	}
	if sp.Topology.Preset != "conformance" || sp.Topology.Count != 2 {
		t.Errorf("default topology: %+v", sp.Topology)
	}
	if sp.Schedule.Align != 2.0 || sp.Schedule.Slack != 0.25 {
		t.Errorf("default schedule: %+v", sp.Schedule)
	}
}

func TestParseJSON(t *testing.T) {
	t.Parallel()
	src := `{
		"kernel": "straggler",
		"ranks": 4,
		"work": {"base": 0.15, "spread": 0},
		"faults": {"stragglers": [{"rank": 2, "factor": 3.0, "from": 1, "to": 2}]}
	}`
	sp, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kernel != KernelStraggler || len(sp.Faults.Stragglers) != 1 {
		t.Fatalf("got %+v", sp)
	}
	if s := sp.Faults.Stragglers[0]; s.Rank != 2 || s.Factor != 3.0 || s.From != 1 || s.To != 2 {
		t.Fatalf("straggler = %+v", s)
	}
}

func TestParseFlowAndNesting(t *testing.T) {
	t.Parallel()
	src := `
kernel: halo1d
ranks: 4
topology:
  metahosts:
    - name: A
      nodes: 2
      internal: {latency_us: 20, bandwidth_gbps: 8}
    - name: B
      nodes: 2
      internal:
        latency_us: 25
        bandwidth_gbps: 8
# a comment between sections
placement:
  - {metahost: 0, nodes: 2, per_node: 1}
  - {metahost: 1, nodes: 2, per_node: 1}
`
	sp, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Topology.Metahosts) != 2 {
		t.Fatalf("metahosts: %+v", sp.Topology.Metahosts)
	}
	if sp.Topology.Metahosts[1].Internal.LatencyUS != 25 {
		t.Errorf("nested link: %+v", sp.Topology.Metahosts[1].Internal)
	}
	if len(sp.Placement) != 2 || sp.Placement[1].Metahost != 1 {
		t.Errorf("placement: %+v", sp.Placement)
	}
}

// TestParseErrors sweeps hostile documents: each must produce a
// structured *Error (never a panic), and the error must mention the
// offending path or line.
func TestParseErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty", "", "empty"},
		{"unknown-key", "kernel: halo1d\nranks: 4\nbogus: 1\n", "bogus"},
		{"unknown-kernel", "kernel: warp\nranks: 4\n", "kernel"},
		{"zero-ranks", "kernel: halo1d\nranks: 0\n", "ranks"},
		{"one-rank", "kernel: halo1d\nranks: 1\n", "ranks"},
		{"too-many-ranks", "kernel: halo1d\nranks: 100000\n", "ranks"},
		{"nan-drift", "kernel: halo1d\nranks: 4\ntopology:\n  metahosts:\n    - name: A\n      nodes: 4\n      internal: {latency_us: 20, bandwidth_gbps: 8}\n      clock: {max_drift_ppm: NaN}\n", "number"},
		{"negative-latency", "kernel: halo1d\nranks: 4\ntopology:\n  metahosts:\n    - name: A\n      nodes: 4\n      internal: {latency_us: -5, bandwidth_gbps: 8}\n", "latency"},
		{"grid-mismatch", "kernel: halo2d\nranks: 5\nparams: {px: 2, py: 2}\n", "halo2d"},
		{"placement-mismatch", "kernel: halo1d\nranks: 4\nplacement:\n  - {metahost: 0, nodes: 3, per_node: 1}\n", "placement"},
		{"tab-indent", "kernel: halo1d\n\tranks: 4\n", "tab"},
		{"bad-bool", "kernel: halo1d\nranks: 4\ntopology: {asymmetry: maybe}\n", "true or false"},
		{"straggler-rank-oob", "kernel: halo1d\nranks: 4\nfaults:\n  stragglers:\n    - {rank: 9, factor: 2}\n", "rank"},
		{"burst-backwards", "kernel: halo1d\nranks: 4\nfaults:\n  cross_traffic:\n    - {from: 5, to: 3, extra_ms: 1}\n", "from"},
		{"truncate-keep", "kernel: halo1d\nranks: 4\nfaults:\n  truncate:\n    - {rank: 1, keep: 1.5}\n", "keep"},
		{"preset-and-custom", "kernel: halo1d\nranks: 4\ntopology:\n  preset: conformance\n  metahosts:\n    - name: A\n      nodes: 4\n      internal: {latency_us: 20, bandwidth_gbps: 8}\n", "mutually exclusive"},
		{"bad-json", "{\"kernel\": ", "json"},
		{"dup-key", "kernel: halo1d\nkernel: halo2d\nranks: 4\n", "duplicate"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			_, err := Parse([]byte(c.src))
			if err == nil {
				t.Fatalf("Parse accepted %q", c.src)
			}
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("error is %T, want *scenario.Error: %v", err, err)
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.wantSub)) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

// TestCompileErrors covers semantic failures only Compile can detect.
func TestCompileErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name, src, wantSub string
	}{
		{"burst-under-align", "kernel: halo1d\nranks: 4\nfaults:\n  cross_traffic:\n    - {from: 0.5, to: 2.5, extra_ms: 1}\n", "schedule.align"},
		{"burst-past-end", "kernel: halo1d\nranks: 4\nfaults:\n  cross_traffic:\n    - {from: 2.5, to: 900, extra_ms: 1}\n", "last phase"},
		{"placement-node-overflow", "kernel: halo1d\nranks: 4\ntopology:\n  metahosts:\n    - name: A\n      nodes: 2\n      internal: {latency_us: 20, bandwidth_gbps: 8}\n", "placement"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			_, err := Load([]byte(c.src))
			if err == nil {
				t.Fatalf("Load accepted %q", c.src)
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.wantSub)) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}
