package scenario

import (
	"fmt"

	"metascope/internal/pattern"
)

// The kernel planners below produce the aligned phase list and, in the
// same pass, the closed-form expectation. The forms rely on three
// facts of the measurement and replay layers, verified by the
// conformance suite:
//
//   - a send event carries its enclosing MPI region's enter time, and
//     no simulated time passes between entering the region and
//     recording the send, so sendEnter = alignment point + work done
//     before the call;
//   - Late Sender severity is clamp(sendEnter − recvEnter,
//     recvDone − recvEnter), so with eager payloads it reduces to the
//     difference of the planned work amounts, independent of latency;
//   - Wait-at-Barrier/NxN severity is maxEnter − myEnter, again a pure
//     difference of work amounts.
//
// Each planner draws work deterministically from the scenario PRNG in
// documented order (rank-major within each phase), so recompiling a
// Spec always reproduces the same tables and expectation.

// pairLS records the Late Sender expectation for one Sendrecv pair:
// whichever rank enters the exchange earlier waits for the other's
// send by exactly the work difference.
func (c *planCtx) pairLS(a, b int, work []float64) {
	grid := c.crossMH(a, b)
	if d := work[b] - work[a]; d > 0 {
		c.add(pattern.KeyLateSender, a, d)
		if grid {
			c.add(pattern.KeyGridLS, a, d)
		}
	}
	if d := work[a] - work[b]; d > 0 {
		c.add(pattern.KeyLateSender, b, d)
		if grid {
			c.add(pattern.KeyGridLS, b, d)
		}
	}
}

// planHalo1D is a 1-D halo-exchange stencil: each iteration exchanges
// boundaries with the left and right neighbours in two parallel
// phases (even pairs, then odd pairs), one Sendrecv per rank per
// phase.
func planHalo1D(c *planCtx) []phase {
	sp := c.sp
	n := sp.Ranks
	var phases []phase
	for it := 0; it < sp.Iterations; it++ {
		for par := 0; par < 2; par++ {
			c.step = it*2 + par
			ph := phase{
				name: fmt.Sprintf("iter%d/%s", it, [2]string{"even", "odd"}[par]),
				work: make([]float64, n),
				ops:  make([]rankOp, n),
			}
			for r := 0; r < n; r++ {
				ph.work[r] = c.draw(r, it)
			}
			for a := par; a+1 < n; a += 2 {
				b := a + 1
				ph.ops[a] = rankOp{kind: opSendrecv, peer: b}
				ph.ops[b] = rankOp{kind: opSendrecv, peer: a}
				c.pairLS(a, b, ph.work)
			}
			phases = append(phases, ph)
		}
	}
	return phases
}

// planHalo2D is the 2-D stencil on a px × py process grid (rank =
// y·px + x): four exchange phases per iteration — x-even, x-odd,
// y-even, y-odd — with fresh work draws per phase.
func planHalo2D(c *planCtx) []phase {
	sp := c.sp
	px, py := sp.Params.PX, sp.Params.PY
	n := sp.Ranks
	var phases []phase
	addPhase := func(it int, name string, pair func(ph *phase)) {
		c.step = len(phases)
		ph := phase{
			name: fmt.Sprintf("iter%d/%s", it, name),
			work: make([]float64, n),
			ops:  make([]rankOp, n),
		}
		for r := 0; r < n; r++ {
			ph.work[r] = c.draw(r, it)
		}
		pair(&ph)
		phases = append(phases, ph)
	}
	for it := 0; it < sp.Iterations; it++ {
		for par := 0; par < 2; par++ {
			addPhase(it, fmt.Sprintf("x-%s", [2]string{"even", "odd"}[par]), func(ph *phase) {
				for y := 0; y < py; y++ {
					for x := par; x+1 < px; x += 2 {
						a := y*px + x
						b := a + 1
						ph.ops[a] = rankOp{kind: opSendrecv, peer: b}
						ph.ops[b] = rankOp{kind: opSendrecv, peer: a}
						c.pairLS(a, b, ph.work)
					}
				}
			})
		}
		for par := 0; par < 2; par++ {
			addPhase(it, fmt.Sprintf("y-%s", [2]string{"even", "odd"}[par]), func(ph *phase) {
				for x := 0; x < px; x++ {
					for y := par; y+1 < py; y += 2 {
						a := y*px + x
						b := a + px
						ph.ops[a] = rankOp{kind: opSendrecv, peer: b}
						ph.ops[b] = rankOp{kind: opSendrecv, peer: a}
						c.pairLS(a, b, ph.work)
					}
				}
			})
		}
	}
	return phases
}

// planMasterWorker is a master-worker round: rank 0 prepares one task
// per worker (skewed per-task costs) and hands them out in rank
// order, so worker w's Late Sender wait is the prefix sum of the
// preparation costs; then every worker processes its result and sends
// it back while the master waits in a Waitall, accumulating the sum
// of all collect costs as Late Sender.
func planMasterWorker(c *planCtx) []phase {
	sp := c.sp
	n := sp.Ranks
	workers := make([]int, n-1)
	for i := range workers {
		workers[i] = i + 1
	}
	var phases []phase
	for it := 0; it < sp.Iterations; it++ {
		c.step = it * 2
		h := phase{
			name: fmt.Sprintf("iter%d/handout", it),
			work: make([]float64, n),
			ops:  make([]rankOp, n),
		}
		prep := make([]float64, len(workers))
		cum := 0.0
		for i, w := range workers {
			u := sp.Params.Prep + sp.Params.PrepSpread*c.rng.float()
			prep[i] = u * c.stragglerFactor(0, it) / c.speed[0]
			cum += prep[i]
			c.add(pattern.KeyLateSender, w, cum)
			if c.crossMH(0, w) {
				c.add(pattern.KeyGridLS, w, cum)
			}
			h.ops[w] = rankOp{kind: opRecv, peer: 0}
		}
		h.ops[0] = rankOp{kind: opHandout, workers: workers, prep: prep}
		phases = append(phases, h)

		c.step = it*2 + 1
		col := phase{
			name: fmt.Sprintf("iter%d/collect", it),
			work: make([]float64, n),
			ops:  make([]rankOp, n),
		}
		for _, w := range workers {
			u := sp.Params.Collect + sp.Params.CollectSpread*c.rng.float()
			cw := u * c.stragglerFactor(w, it) / c.speed[w]
			col.work[w] = cw
			col.ops[w] = rankOp{kind: opSend, peer: 0}
			c.add(pattern.KeyLateSender, 0, cw)
			if c.crossMH(0, w) {
				c.add(pattern.KeyGridLS, 0, cw)
			}
		}
		col.ops[0] = rankOp{kind: opCollect, workers: workers}
		phases = append(phases, col)
	}
	return phases
}

// inWindow reports whether rank r falls inside the circular window of
// the given width starting at start.
func inWindow(r, start, width, n int) bool {
	d := r - start
	if d < 0 {
		d += n
	}
	return d < width
}

// planAMR models adaptive mesh refinement imbalance: a refinement
// window of Window ranks carries Amp extra work each iteration, the
// window marching around the rank ring, followed by a barrier. Every
// rank's Wait-at-Barrier severity is the distance to the heaviest
// rank's work.
func planAMR(c *planCtx) []phase {
	sp := c.sp
	n := sp.Ranks
	var phases []phase
	for it := 0; it < sp.Iterations; it++ {
		c.step = it
		ph := phase{
			name: fmt.Sprintf("iter%d/refine", it),
			work: make([]float64, n),
			ops:  make([]rankOp, n),
		}
		start := (it * sp.Params.Window) % n
		for r := 0; r < n; r++ {
			u := sp.Work.Base + sp.Work.Spread*c.rng.float()
			if inWindow(r, start, sp.Params.Window, n) {
				u += sp.Params.Amp
			}
			ph.work[r] = u * c.stragglerFactor(r, it) / c.speed[r]
			ph.ops[r] = rankOp{kind: opBarrier}
		}
		mx := 0.0
		for _, w := range ph.work {
			if w > mx {
				mx = w
			}
		}
		for r := 0; r < n; r++ {
			c.add(pattern.KeyWaitBarrier, r, mx-ph.work[r])
			if c.spanning {
				c.add(pattern.KeyGridWB, r, mx-ph.work[r])
			}
		}
		phases = append(phases, ph)
	}
	c.exp.Bounds[pattern.KeyBarrierComp] = float64(sp.Iterations) * CompletionPerCall
	c.exp.StepBounds[pattern.KeyBarrierComp] = CompletionPerCall
	return phases
}

// planStraggler is bulk-synchronous uniform work closed by an
// Allreduce, with the imbalance coming entirely from the scenario's
// straggler faults: every rank's Wait-at-NxN severity is the distance
// to the slowest rank.
func planStraggler(c *planCtx) []phase {
	sp := c.sp
	n := sp.Ranks
	var phases []phase
	for it := 0; it < sp.Iterations; it++ {
		c.step = it
		ph := phase{
			name: fmt.Sprintf("iter%d/step", it),
			work: make([]float64, n),
			ops:  make([]rankOp, n),
		}
		for r := 0; r < n; r++ {
			ph.work[r] = c.draw(r, it)
			ph.ops[r] = rankOp{kind: opAllreduce}
		}
		mx := 0.0
		for _, w := range ph.work {
			if w > mx {
				mx = w
			}
		}
		for r := 0; r < n; r++ {
			c.add(pattern.KeyWaitNxN, r, mx-ph.work[r])
			if c.spanning {
				c.add(pattern.KeyGridNxN, r, mx-ph.work[r])
			}
		}
		phases = append(phases, ph)
	}
	c.exp.Bounds[pattern.KeyNxNComp] = float64(sp.Iterations) * CompletionPerCall
	c.exp.StepBounds[pattern.KeyNxNComp] = CompletionPerCall
	return phases
}
