// Package scenario is the declarative workload front-end of the
// toolchain: a small scenario language (an indentation-based YAML
// subset, or JSON) describing a metacomputer — metahosts, link
// latencies and bandwidths, clock models — together with an
// application kernel, its parameters, and fault injection (stragglers,
// bursty WAN cross-traffic windows, trace truncation). A compiler
// lowers a scenario onto internal/sim + internal/mmpi +
// internal/topology, producing a measured trace archive through the
// normal pipeline, and derives a closed-form expectation of every
// wait-state severity the analyzer must recover, so the conformance
// oracle can verify generated workloads exactly as it verifies the
// planted single-pattern scenarios.
//
// The kernels are aligned-step workloads: each global step starts at a
// pre-computed simulation time every rank sleeps to, performs
// deterministic per-rank work drawn from the scenario's own PRNG, and
// issues exactly one blocking communication construct. Because the
// replay analyzer computes wait states from region-enter deltas, the
// resulting severities are pure functions of the work tables —
// independent of transfer times, latency modelling, and cross-traffic
// — and exact on the deterministic conformance testbed.
package scenario

import (
	"fmt"

	"metascope/internal/trace"
)

// Error is a structured scenario error: where in the document it was
// detected (1-based source line when known, dotted field path) and
// what went wrong. Parsing and validation return *Error values and
// never panic, whatever the input.
type Error struct {
	Line int    // 1-based source line; 0 when unknown (e.g. JSON input)
	Path string // dotted field path, e.g. "topology.metahosts[1].clock"
	Msg  string
}

func (e *Error) Error() string {
	switch {
	case e.Line > 0 && e.Path != "":
		return fmt.Sprintf("scenario: line %d: %s: %s", e.Line, e.Path, e.Msg)
	case e.Line > 0:
		return fmt.Sprintf("scenario: line %d: %s", e.Line, e.Msg)
	case e.Path != "":
		return fmt.Sprintf("scenario: %s: %s", e.Path, e.Msg)
	default:
		return "scenario: " + e.Msg
	}
}

func errAt(line int, path, format string, args ...interface{}) *Error {
	return &Error{Line: line, Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Kernel names accepted by the "kernel" field.
const (
	KernelHalo1D       = "halo1d"
	KernelHalo2D       = "halo2d"
	KernelMasterWorker = "masterworker"
	KernelAMR          = "amr"
	KernelStraggler    = "straggler"
)

// Kernels lists every shipped kernel in display order.
func Kernels() []string {
	return []string{KernelHalo1D, KernelHalo2D, KernelMasterWorker, KernelAMR, KernelStraggler}
}

// Spec is a fully decoded scenario document. Zero values stand for
// "not set"; Parse fills defaults and Validate enforces ranges, so a
// Spec obtained from Parse is always internally consistent.
type Spec struct {
	Name       string
	Kernel     string
	Seed       int64
	Format     trace.Format
	Ranks      int
	Iterations int
	Bytes      int // p2p payload; must stay under the eager limit

	Topology  TopoSpec
	Placement []PlaceSpec
	Schedule  ScheduleSpec
	Work      WorkSpec
	Params    ParamSpec
	Faults    FaultSpec
}

// TopoSpec selects either a named preset or a custom metahost list.
type TopoSpec struct {
	Preset    string // "conformance" (default when Metahosts is empty)
	Count     int    // metahost count for the preset
	Metahosts []MetahostSpec
	External  *LinkSpec // override for inter-metahost links
	Asymmetry bool      // enable per-route latency asymmetry (breaks exactness)
}

// MetahostSpec describes one custom metahost.
type MetahostSpec struct {
	Name      string
	Nodes     int
	CPUs      int
	Speed     float64 // relative execution speed (work units per second)
	Internal  LinkSpec
	NodeLocal *LinkSpec
	Clock     ClockSpec
}

// LinkSpec describes one network segment in human units.
type LinkSpec struct {
	LatencyUS     float64 // one-way latency mean, microseconds
	JitterUS      float64 // latency standard deviation, microseconds
	BandwidthGbps float64
	Dedicated     *bool // nil = true (no cross-traffic spikes)
}

// ClockSpec describes a metahost's node clocks in human units.
type ClockSpec struct {
	MaxOffsetMS   float64
	MaxDriftPPM   float64
	GranularityUS float64
	Synchronized  bool
}

// PlaceSpec places a block of ranks: nodes × per_node processes on the
// given metahost starting at first_node.
type PlaceSpec struct {
	Metahost  int
	FirstNode int
	Nodes     int
	PerNode   int
}

// ScheduleSpec tunes the aligned-step schedule.
type ScheduleSpec struct {
	Align float64 // absolute start of the first step (after init sync)
	Slack float64 // per-step headroom beyond the worst-case work
}

// WorkSpec is the base per-rank work model in work units (seconds on a
// speed-1.0 machine): base plus a uniform [0, spread) draw from the
// scenario PRNG per rank and step.
type WorkSpec struct {
	Base   float64
	Spread float64
}

// ParamSpec holds kernel-specific parameters; unused fields are
// ignored by kernels that do not consume them.
type ParamSpec struct {
	PX, PY        int     // halo2d process grid
	Prep          float64 // masterworker: mean per-task handout cost
	PrepSpread    float64
	Collect       float64 // masterworker: mean per-result collect cost
	CollectSpread float64
	Window        int     // amr: refinement window width (ranks)
	Amp           float64 // amr: extra work inside the window
}

// FaultSpec is the injected-fault section.
type FaultSpec struct {
	Stragglers   []StragglerSpec
	CrossTraffic []BurstSpec
	Truncate     []TruncateSpec
}

// StragglerSpec multiplies one rank's work by Factor over the
// iteration range [From, To] (inclusive, 0-based).
type StragglerSpec struct {
	Rank   int
	Factor float64
	From   int
	To     int
}

// BurstSpec adds ExtraMS milliseconds of one-way latency to every
// message on links of the given class during the simulation-time
// window [From, To). Class is "external", "internal", "same-node", or
// "any".
type BurstSpec struct {
	From    float64
	To      float64
	ExtraMS float64
	Class   string
}

// TruncateSpec cuts one rank's trace file to the given fraction of its
// bytes after measurement — a rank-failure model. Analysis of the
// archive is then expected to fail with a structured decode error.
type TruncateSpec struct {
	Rank int
	Keep float64 // fraction of bytes kept, in (0, 1)
}

// rng is a splitmix64 generator: the scenario's own deterministic
// randomness for work tables, independent of the simulation engine's
// streams so that expectations can be computed without running
// anything.
type rng struct{ s uint64 }

func newRNG(seed int64, salt string) *rng {
	s := uint64(seed)
	for _, c := range []byte(salt) {
		s = (s ^ uint64(c)) * 1099511628211 // FNV-1a step
	}
	return &rng{s: s}
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }
