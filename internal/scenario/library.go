package scenario

import (
	"embed"
	"sort"
	"strings"
)

//go:embed library/*.yaml
var libraryFS embed.FS

// LibraryNames lists the shipped scenario names in sorted order.
func LibraryNames() []string {
	ents, err := libraryFS.ReadDir("library")
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, strings.TrimSuffix(e.Name(), ".yaml"))
	}
	sort.Strings(names)
	return names
}

// LibrarySource returns the raw document of a shipped scenario.
func LibrarySource(name string) ([]byte, error) {
	src, err := libraryFS.ReadFile("library/" + name + ".yaml")
	if err != nil {
		return nil, errAt(0, "", "no library scenario %q (have %s)", name, strings.Join(LibraryNames(), ", "))
	}
	return src, nil
}

// LoadLibrary parses and compiles a shipped scenario.
func LoadLibrary(name string) (*Program, error) {
	src, err := LibrarySource(name)
	if err != nil {
		return nil, err
	}
	return Load(src)
}
