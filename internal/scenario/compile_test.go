package scenario

import (
	"math"
	"strings"
	"testing"

	"metascope/internal/pattern"
)

// TestLibraryCompiles loads every shipped scenario and checks the
// basic compiled invariants: schedule monotone, expectation populated
// (or Err for damaged-archive scenarios), deterministic recompiles.
func TestLibraryCompiles(t *testing.T) {
	t.Parallel()
	names := LibraryNames()
	if len(names) < 7 {
		t.Fatalf("library has %d scenarios, want at least 7: %v", len(names), names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := LoadLibrary(name)
			if err != nil {
				t.Fatal(err)
			}
			if p.Phases() == 0 {
				t.Fatal("compiled to zero phases")
			}
			last := 0.0
			for i := range p.phases {
				if p.phases[i].at <= last {
					t.Fatalf("phase %d at %g not after %g", i, p.phases[i].at, last)
				}
				last = p.phases[i].at
			}
			if !p.Expect.Err && len(p.Expect.Keys) == 0 {
				t.Error("expectation has no keys and no Err")
			}
			// Recompiling must reproduce the identical plan.
			q, err := LoadLibrary(name)
			if err != nil {
				t.Fatal(err)
			}
			if p.Describe() != q.Describe() {
				t.Error("two compiles of the same scenario describe differently")
			}
		})
	}
}

// TestStragglerClosedForm pins a hand-computed expectation: uniform
// work 0.15, rank 2 slowed 3x in iterations 1-2 of 4, Allreduce per
// iteration. Every other rank waits 0.30s each slowed iteration.
func TestStragglerClosedForm(t *testing.T) {
	t.Parallel()
	p, err := LoadLibrary("straggler")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{0: 0.6, 1: 0.6, 3: 0.6}
	got := p.Expect.Keys[pattern.KeyWaitNxN]
	if len(got) != len(want) {
		t.Fatalf("WaitNxN expectation = %v, want %v", got, want)
	}
	for r, w := range want {
		if math.Abs(got[r]-w) > 1e-12 {
			t.Errorf("rank %d: %g, want %g", r, got[r], w)
		}
	}
	// The world spans both testbed metahosts, so the grid child
	// carries the same values.
	gotGrid := p.Expect.Keys[pattern.KeyGridNxN]
	for r, w := range want {
		if math.Abs(gotGrid[r]-w) > 1e-12 {
			t.Errorf("grid rank %d: %g, want %g", r, gotGrid[r], w)
		}
	}
	if b := p.Expect.Bounds[pattern.KeyNxNComp]; math.Abs(b-4*CompletionPerCall) > 1e-12 {
		t.Errorf("NxN completion bound = %g, want %g", b, 4*CompletionPerCall)
	}
	if !p.Expect.Exact {
		t.Error("straggler scenario should compile exact")
	}
}

// TestMasterWorkerClosedForm checks the structural form without
// pinning PRNG draws: worker waits are strictly increasing prefix
// sums, and the master's wait is the sum of all collect costs.
func TestMasterWorkerClosedForm(t *testing.T) {
	t.Parallel()
	p, err := LoadLibrary("masterworker")
	if err != nil {
		t.Fatal(err)
	}
	ls := p.Expect.Keys[pattern.KeyLateSender]
	if len(ls) != p.N() {
		t.Fatalf("LateSender covers %d ranks, want all %d", len(ls), p.N())
	}
	// With all workers on the far metahost, every instance is grid.
	grid := p.Expect.Keys[pattern.KeyGridLS]
	for r := 0; r < p.N(); r++ {
		if math.Abs(ls[r]-grid[r]) > 1e-12 {
			t.Errorf("rank %d: base %g != grid %g though all pairs cross", r, ls[r], grid[r])
		}
	}
	// Worker handout waits grow with rank (prefix sums of positive
	// prep costs, summed over equal iteration counts).
	for r := 2; r < p.N(); r++ {
		if ls[r] <= ls[r-1] {
			t.Errorf("worker waits not increasing: ls[%d]=%g <= ls[%d]=%g", r, ls[r], r-1, ls[r-1])
		}
	}
	if ls[0] <= 0 {
		t.Error("master accumulated no collect-phase wait")
	}
}

// TestDescribeRendersPlan spot-checks the deterministic plan dump.
func TestDescribeRendersPlan(t *testing.T) {
	t.Parallel()
	p, err := LoadLibrary("crosstraffic")
	if err != nil {
		t.Fatal(err)
	}
	d := p.Describe()
	for _, sub := range []string{
		`scenario "crosstraffic"`,
		"kernel halo1d",
		"topology: custom, 2 metahosts",
		"cross-traffic +2ms on external links",
		"mpi.communication.p2p.late_sender",
		"exact=true",
	} {
		if !strings.Contains(d, sub) {
			t.Errorf("Describe() missing %q:\n%s", sub, d)
		}
	}
}

// TestValidateStepCeiling rejects scenarios that would compile to an
// unbounded number of rank-steps.
func TestValidateStepCeiling(t *testing.T) {
	t.Parallel()
	sp := &Spec{Kernel: KernelHalo2D, Ranks: 256, Iterations: 64,
		Bytes: 1024, Params: ParamSpec{PX: 16, PY: 16, Prep: 0.1, Collect: 0.1, Amp: 0.1},
		Schedule: ScheduleSpec{Align: 2, Slack: 0.25}, Work: WorkSpec{Base: 0.1},
		Topology: TopoSpec{Preset: "conformance", Count: 2}}
	if err := sp.Validate(); err == nil {
		t.Fatal("256 ranks x 64 iterations x 4 phases passed validation")
	} else if !strings.Contains(err.Error(), "rank-steps") {
		t.Fatalf("unexpected error: %v", err)
	}
}
