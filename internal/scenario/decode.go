package scenario

import (
	"fmt"
	"math"
	"strconv"

	"metascope/internal/trace"
)

// Hard limits keeping compiled scenarios bounded whatever the input —
// the fuzz harness feeds this decoder arbitrary documents.
const (
	maxRanks      = 256
	maxIterations = 64
	maxMetahosts  = 16
	maxNodes      = 1024
	maxListLen    = 64
	maxSteps      = 50000 // ranks × phases ceiling after compilation
)

// Parse decodes and validates a scenario document (YAML subset or
// JSON). It returns a *Error and never panics, whatever the input.
func Parse(src []byte) (*Spec, error) {
	if len(src) > 1<<20 {
		return nil, errAt(0, "", "document larger than 1 MiB")
	}
	root, err := parseTree(src)
	if err != nil {
		return nil, err
	}
	sp, err := decodeSpec(root)
	if err != nil {
		return nil, err
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// Load is Parse followed by Compile.
func Load(src []byte) (*Program, error) {
	sp, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return sp.Compile()
}

// obj wraps a map node with path bookkeeping and strict key checking.
type obj struct {
	n    *node
	path string
	used map[string]bool
}

func newObj(n *node, path string) (*obj, error) {
	if n.kind != mapNode {
		return nil, errAt(n.line, path, "expected a mapping")
	}
	return &obj{n: n, path: path, used: make(map[string]bool)}, nil
}

func (o *obj) sub(key string) string {
	if o.path == "" {
		return key
	}
	return o.path + "." + key
}

func (o *obj) val(key string) *node {
	o.used[key] = true
	n := o.n.get(key)
	if n != nil && n.isNull() {
		return nil // `key:` with no value counts as absent
	}
	return n
}

// finish rejects unknown keys — the strictness that turns typos into
// errors instead of silently ignored settings.
func (o *obj) finish() error {
	for _, e := range o.n.entries {
		if !o.used[e.key] {
			return errAt(e.keyLine, o.path, "unknown key %q", e.key)
		}
	}
	return nil
}

func (o *obj) str(key, def string) (string, error) {
	n := o.val(key)
	if n == nil {
		return def, nil
	}
	if n.kind != scalarNode {
		return "", errAt(n.line, o.sub(key), "expected a string")
	}
	return n.scalar, nil
}

func (o *obj) f64(key string, def float64) (float64, error) {
	n := o.val(key)
	if n == nil {
		return def, nil
	}
	return decodeFloat(n, o.sub(key))
}

func decodeFloat(n *node, path string) (float64, error) {
	if n.kind != scalarNode || n.quoted {
		return 0, errAt(n.line, path, "expected a number")
	}
	v, err := strconv.ParseFloat(n.scalar, 64)
	if err != nil {
		return 0, errAt(n.line, path, "invalid number %q", n.scalar)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, errAt(n.line, path, "number must be finite, got %q", n.scalar)
	}
	return v, nil
}

func (o *obj) i(key string, def int) (int, error) {
	n := o.val(key)
	if n == nil {
		return def, nil
	}
	if n.kind != scalarNode || n.quoted {
		return 0, errAt(n.line, o.sub(key), "expected an integer")
	}
	v, err := strconv.ParseInt(n.scalar, 10, 32)
	if err != nil {
		return 0, errAt(n.line, o.sub(key), "invalid integer %q", n.scalar)
	}
	return int(v), nil
}

func (o *obj) i64(key string, def int64) (int64, error) {
	n := o.val(key)
	if n == nil {
		return def, nil
	}
	if n.kind != scalarNode || n.quoted {
		return 0, errAt(n.line, o.sub(key), "expected an integer")
	}
	v, err := strconv.ParseInt(n.scalar, 10, 64)
	if err != nil {
		return 0, errAt(n.line, o.sub(key), "invalid integer %q", n.scalar)
	}
	return v, nil
}

func (o *obj) b(key string, def bool) (bool, error) {
	n := o.val(key)
	if n == nil {
		return def, nil
	}
	if n.kind != scalarNode || n.quoted || (n.scalar != "true" && n.scalar != "false") {
		return false, errAt(n.line, o.sub(key), "expected true or false")
	}
	return n.scalar == "true", nil
}

func (o *obj) child(key string) (*obj, error) {
	n := o.val(key)
	if n == nil {
		return nil, nil
	}
	return newObj(n, o.sub(key))
}

func (o *obj) list(key string) ([]*node, int, error) {
	n := o.val(key)
	if n == nil {
		return nil, 0, nil
	}
	if n.kind != listNode {
		return nil, 0, errAt(n.line, o.sub(key), "expected a list")
	}
	if len(n.items) > maxListLen {
		return nil, 0, errAt(n.line, o.sub(key), "list has %d entries (limit %d)", len(n.items), maxListLen)
	}
	return n.items, n.line, nil
}

func decodeSpec(root *node) (*Spec, error) {
	o, err := newObj(root, "")
	if err != nil {
		return nil, err
	}
	sp := &Spec{}
	if sp.Name, err = o.str("name", ""); err != nil {
		return nil, err
	}
	if sp.Kernel, err = o.str("kernel", ""); err != nil {
		return nil, err
	}
	if sp.Seed, err = o.i64("seed", 1); err != nil {
		return nil, err
	}
	fstr, err := o.str("format", "")
	if err != nil {
		return nil, err
	}
	if fstr != "" {
		f, ferr := trace.ParseFormat(fstr)
		if ferr != nil {
			return nil, errAt(root.line, "format", "%v", ferr)
		}
		sp.Format = f
	}
	if sp.Ranks, err = o.i("ranks", 0); err != nil {
		return nil, err
	}
	if sp.Iterations, err = o.i("iterations", 2); err != nil {
		return nil, err
	}
	if sp.Bytes, err = o.i("bytes", 2048); err != nil {
		return nil, err
	}

	if err := decodeTopo(o, &sp.Topology); err != nil {
		return nil, err
	}
	if err := decodePlacement(o, sp); err != nil {
		return nil, err
	}
	if err := decodeSchedule(o, &sp.Schedule); err != nil {
		return nil, err
	}
	if err := decodeWork(o, &sp.Work); err != nil {
		return nil, err
	}
	if err := decodeParams(o, &sp.Params); err != nil {
		return nil, err
	}
	if err := decodeFaults(o, &sp.Faults); err != nil {
		return nil, err
	}
	if err := o.finish(); err != nil {
		return nil, err
	}
	return sp, nil
}

func decodeTopo(parent *obj, t *TopoSpec) error {
	o, err := parent.child("topology")
	if err != nil {
		return err
	}
	if o == nil {
		t.Preset = "conformance"
		t.Count = 2
		return nil
	}
	if t.Preset, err = o.str("preset", ""); err != nil {
		return err
	}
	if t.Count, err = o.i("count", 2); err != nil {
		return err
	}
	if t.Asymmetry, err = o.b("asymmetry", false); err != nil {
		return err
	}
	items, _, err := o.list("metahosts")
	if err != nil {
		return err
	}
	for i, it := range items {
		mo, err := newObj(it, fmt.Sprintf("%s[%d]", o.sub("metahosts"), i))
		if err != nil {
			return err
		}
		var m MetahostSpec
		if m.Name, err = mo.str("name", fmt.Sprintf("MH%c", 'A'+i%26)); err != nil {
			return err
		}
		if m.Nodes, err = mo.i("nodes", 0); err != nil {
			return err
		}
		if m.CPUs, err = mo.i("cpus", 1); err != nil {
			return err
		}
		if m.Speed, err = mo.f64("speed", 1.0); err != nil {
			return err
		}
		if err = decodeLink(mo, "internal", &m.Internal); err != nil {
			return err
		}
		if lo, err := mo.child("node_local"); err != nil {
			return err
		} else if lo != nil {
			m.NodeLocal = &LinkSpec{}
			if err := decodeLinkObj(lo, m.NodeLocal); err != nil {
				return err
			}
		}
		if err = decodeClock(mo, &m.Clock); err != nil {
			return err
		}
		if err = mo.finish(); err != nil {
			return err
		}
		t.Metahosts = append(t.Metahosts, m)
	}
	if eo, err := o.child("external"); err != nil {
		return err
	} else if eo != nil {
		t.External = &LinkSpec{}
		if err := decodeLinkObj(eo, t.External); err != nil {
			return err
		}
	}
	if t.Preset == "" && len(t.Metahosts) == 0 {
		t.Preset = "conformance"
	}
	return o.finish()
}

func decodeLink(parent *obj, key string, l *LinkSpec) error {
	o, err := parent.child(key)
	if err != nil {
		return err
	}
	if o == nil {
		return errAt(parent.n.line, parent.sub(key), "link description required")
	}
	return decodeLinkObj(o, l)
}

func decodeLinkObj(o *obj, l *LinkSpec) error {
	var err error
	if l.LatencyUS, err = o.f64("latency_us", 0); err != nil {
		return err
	}
	if l.JitterUS, err = o.f64("jitter_us", 0); err != nil {
		return err
	}
	if l.BandwidthGbps, err = o.f64("bandwidth_gbps", 0); err != nil {
		return err
	}
	if o.val("dedicated") != nil {
		o.used["dedicated"] = true
		d, err := o.b("dedicated", true)
		if err != nil {
			return err
		}
		l.Dedicated = &d
	}
	return o.finish()
}

func decodeClock(parent *obj, c *ClockSpec) error {
	o, err := parent.child("clock")
	if err != nil {
		return err
	}
	if o == nil {
		*c = ClockSpec{MaxOffsetMS: 5, MaxDriftPPM: 2}
		return nil
	}
	if c.MaxOffsetMS, err = o.f64("max_offset_ms", 5); err != nil {
		return err
	}
	if c.MaxDriftPPM, err = o.f64("max_drift_ppm", 2); err != nil {
		return err
	}
	if c.GranularityUS, err = o.f64("granularity_us", 0); err != nil {
		return err
	}
	if c.Synchronized, err = o.b("synchronized", false); err != nil {
		return err
	}
	return o.finish()
}

func decodePlacement(parent *obj, sp *Spec) error {
	items, _, err := parent.list("placement")
	if err != nil {
		return err
	}
	for i, it := range items {
		po, err := newObj(it, fmt.Sprintf("placement[%d]", i))
		if err != nil {
			return err
		}
		var p PlaceSpec
		if p.Metahost, err = po.i("metahost", 0); err != nil {
			return err
		}
		if p.FirstNode, err = po.i("first_node", 0); err != nil {
			return err
		}
		if p.Nodes, err = po.i("nodes", 0); err != nil {
			return err
		}
		if p.PerNode, err = po.i("per_node", 1); err != nil {
			return err
		}
		if err = po.finish(); err != nil {
			return err
		}
		sp.Placement = append(sp.Placement, p)
	}
	return nil
}

func decodeSchedule(parent *obj, s *ScheduleSpec) error {
	o, err := parent.child("schedule")
	if err != nil {
		return err
	}
	s.Align, s.Slack = 2.0, 0.25
	if o == nil {
		return nil
	}
	if s.Align, err = o.f64("align", 2.0); err != nil {
		return err
	}
	if s.Slack, err = o.f64("slack", 0.25); err != nil {
		return err
	}
	return o.finish()
}

func decodeWork(parent *obj, w *WorkSpec) error {
	o, err := parent.child("work")
	if err != nil {
		return err
	}
	w.Base, w.Spread = 0.2, 0.1
	if o == nil {
		return nil
	}
	if w.Base, err = o.f64("base", 0.2); err != nil {
		return err
	}
	if w.Spread, err = o.f64("spread", 0.1); err != nil {
		return err
	}
	return o.finish()
}

func decodeParams(parent *obj, p *ParamSpec) error {
	o, err := parent.child("params")
	if err != nil {
		return err
	}
	p.Prep, p.PrepSpread = 0.03, 0.02
	p.Collect, p.CollectSpread = 0.08, 0.05
	p.Amp = 0.25
	if o == nil {
		return nil
	}
	if p.PX, err = o.i("px", 0); err != nil {
		return err
	}
	if p.PY, err = o.i("py", 0); err != nil {
		return err
	}
	if p.Prep, err = o.f64("prep", 0.03); err != nil {
		return err
	}
	if p.PrepSpread, err = o.f64("prep_spread", 0.02); err != nil {
		return err
	}
	if p.Collect, err = o.f64("collect", 0.08); err != nil {
		return err
	}
	if p.CollectSpread, err = o.f64("collect_spread", 0.05); err != nil {
		return err
	}
	if p.Window, err = o.i("window", 0); err != nil {
		return err
	}
	if p.Amp, err = o.f64("amp", 0.25); err != nil {
		return err
	}
	return o.finish()
}

func decodeFaults(parent *obj, f *FaultSpec) error {
	o, err := parent.child("faults")
	if err != nil {
		return err
	}
	if o == nil {
		return nil
	}
	items, _, err := o.list("stragglers")
	if err != nil {
		return err
	}
	for i, it := range items {
		so, err := newObj(it, fmt.Sprintf("%s[%d]", o.sub("stragglers"), i))
		if err != nil {
			return err
		}
		var s StragglerSpec
		if s.Rank, err = so.i("rank", -1); err != nil {
			return err
		}
		if s.Factor, err = so.f64("factor", 2.0); err != nil {
			return err
		}
		if s.From, err = so.i("from", 0); err != nil {
			return err
		}
		if s.To, err = so.i("to", 1<<30); err != nil {
			return err
		}
		if err = so.finish(); err != nil {
			return err
		}
		f.Stragglers = append(f.Stragglers, s)
	}
	items, _, err = o.list("cross_traffic")
	if err != nil {
		return err
	}
	for i, it := range items {
		bo, err := newObj(it, fmt.Sprintf("%s[%d]", o.sub("cross_traffic"), i))
		if err != nil {
			return err
		}
		var b BurstSpec
		if b.From, err = bo.f64("from", 0); err != nil {
			return err
		}
		if b.To, err = bo.f64("to", 0); err != nil {
			return err
		}
		if b.ExtraMS, err = bo.f64("extra_ms", 1.0); err != nil {
			return err
		}
		if b.Class, err = bo.str("class", "external"); err != nil {
			return err
		}
		if err = bo.finish(); err != nil {
			return err
		}
		f.CrossTraffic = append(f.CrossTraffic, b)
	}
	items, _, err = o.list("truncate")
	if err != nil {
		return err
	}
	for i, it := range items {
		to, err := newObj(it, fmt.Sprintf("%s[%d]", o.sub("truncate"), i))
		if err != nil {
			return err
		}
		var tr TruncateSpec
		if tr.Rank, err = to.i("rank", -1); err != nil {
			return err
		}
		if tr.Keep, err = to.f64("keep", 0.5); err != nil {
			return err
		}
		if err = to.finish(); err != nil {
			return err
		}
		f.Truncate = append(f.Truncate, tr)
	}
	return o.finish()
}
