package scenario

import (
	"errors"
	"testing"
)

// FuzzScenarioParse feeds arbitrary documents through the full
// Parse+Compile front end. The contract under fuzzing: never panic,
// never hang, and every rejection is a structured *Error. The seed
// corpus (f.Add below plus testdata/fuzz/FuzzScenarioParse) mixes the
// shipped library with hostile documents so the fuzzer starts from
// both sides of the validity boundary.
func FuzzScenarioParse(f *testing.F) {
	for _, name := range LibraryNames() {
		src, err := LibrarySource(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	for _, hostile := range []string{
		"",
		"kernel: halo1d",
		"kernel: halo1d\nranks: 0\n",
		"kernel: halo2d\nranks: 7\nparams: {px: 2, py: 2}\n",
		"kernel: halo1d\nranks: 4\ntopology:\n  metahosts:\n    - name: A\n      nodes: 4\n      internal: {latency_us: -1, bandwidth_gbps: 8}\n",
		"kernel: halo1d\nranks: 4\ntopology:\n  metahosts:\n    - name: A\n      nodes: 4\n      internal: {latency_us: 20, bandwidth_gbps: 8}\n      clock: {max_drift_ppm: NaN}\n",
		"kernel: halo1d\nranks: 4\nfaults:\n  truncate:\n    - {rank: 1, keep: -3}\n",
		"{\"kernel\": \"halo1d\", \"ranks\": 1e99}",
		"kernel: halo1d\nkernel: halo1d\nranks: 4\n",
		"\xff\xfe\x00bogus",
		"a:\n - - - - [{,}]\n",
	} {
		f.Add([]byte(hostile))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		sp, err := Parse(src)
		if err != nil {
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("Parse error is %T, want *scenario.Error: %v", err, err)
			}
			if sp != nil {
				t.Fatal("Parse returned both a spec and an error")
			}
			return
		}
		if sp == nil {
			t.Fatal("Parse returned neither spec nor error")
		}
		// A spec that parsed and validated must also compile without
		// panicking; compile-time rejections stay structured.
		if _, err := sp.Compile(); err != nil {
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("Compile error is %T, want *scenario.Error: %v", err, err)
			}
		}
	})
}
