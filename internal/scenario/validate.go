package scenario

import (
	"fmt"

	"metascope/internal/mmpi"
)

// presetNames lists the accepted topology presets. "conformance" is
// the deterministic testbed (auto-sized to the placement); the others
// are the paper's systems from internal/topology.
var presetNames = map[string]bool{
	"conformance":  true,
	"viola":        true,
	"viola-shared": true,
	"ibm-power":    true,
}

var burstClasses = map[string]bool{
	"external": true, "internal": true, "same-node": true, "any": true,
}

// Validate enforces range and consistency rules on a decoded Spec and
// fills derived defaults (name, halo2d grid, amr window). Parse calls
// it; callers constructing a Spec in Go should call it themselves.
func (sp *Spec) Validate() error {
	bad := func(path, format string, args ...interface{}) error {
		return errAt(0, path, format, args...)
	}
	kernelOK := false
	for _, k := range Kernels() {
		if sp.Kernel == k {
			kernelOK = true
		}
	}
	if !kernelOK {
		return bad("kernel", "unknown kernel %q (want one of %v)", sp.Kernel, Kernels())
	}
	if sp.Name == "" {
		sp.Name = sp.Kernel
	}
	if sp.Ranks < 2 || sp.Ranks > maxRanks {
		return bad("ranks", "want 2..%d ranks, got %d", maxRanks, sp.Ranks)
	}
	if sp.Iterations < 1 || sp.Iterations > maxIterations {
		return bad("iterations", "want 1..%d iterations, got %d", maxIterations, sp.Iterations)
	}
	if sp.Bytes < 1 || sp.Bytes > mmpi.DefaultEagerLimit {
		return bad("bytes", "want 1..%d bytes (the closed forms need eager messages), got %d",
			mmpi.DefaultEagerLimit, sp.Bytes)
	}
	if sp.Schedule.Align < 0.5 || sp.Schedule.Align > 1e4 {
		return bad("schedule.align", "want 0.5..1e4 seconds, got %g", sp.Schedule.Align)
	}
	if sp.Schedule.Slack < 0.05 || sp.Schedule.Slack > 100 {
		return bad("schedule.slack", "want 0.05..100 seconds, got %g", sp.Schedule.Slack)
	}
	if sp.Work.Base < 0 || sp.Work.Base > 100 {
		return bad("work.base", "want 0..100 work units, got %g", sp.Work.Base)
	}
	if sp.Work.Spread < 0 || sp.Work.Spread > 100 {
		return bad("work.spread", "want 0..100 work units, got %g", sp.Work.Spread)
	}

	if err := sp.validateTopo(); err != nil {
		return err
	}
	if err := sp.validatePlacement(); err != nil {
		return err
	}
	if err := sp.validateKernel(); err != nil {
		return err
	}
	return sp.validateFaults()
}

func (sp *Spec) validateTopo() error {
	t := &sp.Topology
	bad := func(path, format string, args ...interface{}) error {
		return errAt(0, "topology."+path, format, args...)
	}
	if len(t.Metahosts) > 0 {
		if t.Preset != "" {
			return bad("preset", "preset and a custom metahosts list are mutually exclusive")
		}
		if len(t.Metahosts) > maxMetahosts {
			return bad("metahosts", "want at most %d metahosts, got %d", maxMetahosts, len(t.Metahosts))
		}
		seen := make(map[string]bool)
		for i, m := range t.Metahosts {
			p := fmt.Sprintf("metahosts[%d]", i)
			if m.Name == "" || seen[m.Name] {
				return bad(p+".name", "metahost names must be unique and non-empty, got %q", m.Name)
			}
			seen[m.Name] = true
			if m.Nodes < 1 || m.Nodes > maxNodes {
				return bad(p+".nodes", "want 1..%d nodes, got %d", maxNodes, m.Nodes)
			}
			if m.CPUs < 1 || m.CPUs > 64 {
				return bad(p+".cpus", "want 1..64 CPUs per node, got %d", m.CPUs)
			}
			if m.Speed <= 0 || m.Speed > 1e3 {
				return bad(p+".speed", "want a speed factor in (0, 1e3], got %g", m.Speed)
			}
			if err := validateLink(&m.Internal, "topology."+p+".internal"); err != nil {
				return err
			}
			if m.NodeLocal != nil {
				if err := validateLink(m.NodeLocal, "topology."+p+".node_local"); err != nil {
					return err
				}
			}
			c := m.Clock
			if c.MaxOffsetMS < 0 || c.MaxOffsetMS > 1e3 {
				return bad(p+".clock.max_offset_ms", "want 0..1e3 ms, got %g", c.MaxOffsetMS)
			}
			if c.MaxDriftPPM < 0 || c.MaxDriftPPM > 1e3 {
				return bad(p+".clock.max_drift_ppm", "want 0..1e3 ppm, got %g", c.MaxDriftPPM)
			}
			if c.GranularityUS < 0 || c.GranularityUS > 1e3 {
				return bad(p+".clock.granularity_us", "want 0..1e3 us, got %g", c.GranularityUS)
			}
		}
	} else {
		if !presetNames[t.Preset] {
			return bad("preset", "unknown preset %q (want conformance | viola | viola-shared | ibm-power)", t.Preset)
		}
		if t.Preset == "conformance" && (t.Count < 1 || t.Count > maxMetahosts) {
			return bad("count", "want 1..%d metahosts, got %d", maxMetahosts, t.Count)
		}
	}
	if t.External != nil {
		if err := validateLink(t.External, "topology.external"); err != nil {
			return err
		}
	}
	return nil
}

func validateLink(l *LinkSpec, path string) error {
	if l.LatencyUS <= 0 || l.LatencyUS > 1e7 {
		return errAt(0, path+".latency_us", "want (0, 1e7] us, got %g", l.LatencyUS)
	}
	if l.JitterUS < 0 || l.JitterUS > 1e6 {
		return errAt(0, path+".jitter_us", "want 0..1e6 us, got %g", l.JitterUS)
	}
	if l.BandwidthGbps <= 0 || l.BandwidthGbps > 1e4 {
		return errAt(0, path+".bandwidth_gbps", "want (0, 1e4] Gbps, got %g", l.BandwidthGbps)
	}
	return nil
}

func (sp *Spec) validatePlacement() error {
	if len(sp.Placement) == 0 {
		return nil // Compile derives an even block split
	}
	total := 0
	for i, p := range sp.Placement {
		path := fmt.Sprintf("placement[%d]", i)
		if p.Metahost < 0 || p.Metahost >= maxMetahosts {
			return errAt(0, path+".metahost", "want 0..%d, got %d", maxMetahosts-1, p.Metahost)
		}
		if p.FirstNode < 0 || p.FirstNode > maxNodes {
			return errAt(0, path+".first_node", "want 0..%d, got %d", maxNodes, p.FirstNode)
		}
		if p.Nodes < 1 || p.Nodes > maxNodes {
			return errAt(0, path+".nodes", "want 1..%d, got %d", maxNodes, p.Nodes)
		}
		if p.PerNode < 1 || p.PerNode > 64 {
			return errAt(0, path+".per_node", "want 1..64, got %d", p.PerNode)
		}
		total += p.Nodes * p.PerNode
	}
	if total != sp.Ranks {
		return errAt(0, "placement", "placement blocks cover %d ranks, scenario has ranks: %d", total, sp.Ranks)
	}
	return nil
}

func (sp *Spec) validateKernel() error {
	p := &sp.Params
	switch sp.Kernel {
	case KernelHalo1D:
		// any rank count ≥ 2 works
	case KernelHalo2D:
		if p.PX == 0 && p.PY == 0 {
			return errAt(0, "params", "halo2d requires params.px and params.py")
		}
		if p.PX < 2 || p.PY < 2 || p.PX > maxRanks || p.PY > maxRanks {
			return errAt(0, "params", "halo2d wants px, py in 2..%d, got %dx%d", maxRanks, p.PX, p.PY)
		}
		if p.PX*p.PY != sp.Ranks {
			return errAt(0, "params", "halo2d grid %dx%d needs %d ranks, scenario has ranks: %d",
				p.PX, p.PY, p.PX*p.PY, sp.Ranks)
		}
	case KernelMasterWorker:
		if p.Prep <= 0 || p.Prep > 100 {
			return errAt(0, "params.prep", "want (0, 100] seconds, got %g", p.Prep)
		}
		if p.PrepSpread < 0 || p.PrepSpread > 100 {
			return errAt(0, "params.prep_spread", "want 0..100 seconds, got %g", p.PrepSpread)
		}
		if p.Collect <= 0 || p.Collect > 100 {
			return errAt(0, "params.collect", "want (0, 100] seconds, got %g", p.Collect)
		}
		if p.CollectSpread < 0 || p.CollectSpread > 100 {
			return errAt(0, "params.collect_spread", "want 0..100 seconds, got %g", p.CollectSpread)
		}
	case KernelAMR:
		if p.Window == 0 {
			p.Window = sp.Ranks / 4
			if p.Window < 1 {
				p.Window = 1
			}
		}
		if p.Window < 1 || p.Window > sp.Ranks {
			return errAt(0, "params.window", "want 1..ranks (%d), got %d", sp.Ranks, p.Window)
		}
		if p.Amp <= 0 || p.Amp > 100 {
			return errAt(0, "params.amp", "want (0, 100] work units, got %g", p.Amp)
		}
	case KernelStraggler:
		if len(sp.Faults.Stragglers) == 0 {
			return errAt(0, "faults.stragglers", "the straggler kernel needs at least one straggler fault")
		}
	}
	phases := map[string]int{
		KernelHalo1D: 2, KernelHalo2D: 4, KernelMasterWorker: 2,
		KernelAMR: 1, KernelStraggler: 1,
	}[sp.Kernel]
	if steps := sp.Ranks * sp.Iterations * phases; steps > maxSteps {
		return errAt(0, "", "scenario compiles to %d rank-steps (limit %d); shrink ranks or iterations",
			steps, maxSteps)
	}
	return nil
}

func (sp *Spec) validateFaults() error {
	for i, s := range sp.Faults.Stragglers {
		path := fmt.Sprintf("faults.stragglers[%d]", i)
		if s.Rank < 0 || s.Rank >= sp.Ranks {
			return errAt(0, path+".rank", "want 0..%d, got %d", sp.Ranks-1, s.Rank)
		}
		if s.Factor <= 0 || s.Factor > 100 {
			return errAt(0, path+".factor", "want (0, 100], got %g", s.Factor)
		}
		if s.From < 0 || s.From > s.To {
			return errAt(0, path, "want 0 <= from <= to, got from=%d to=%d", s.From, s.To)
		}
	}
	for i, b := range sp.Faults.CrossTraffic {
		path := fmt.Sprintf("faults.cross_traffic[%d]", i)
		if b.From < 0 || b.To <= b.From || b.To > 1e6 {
			return errAt(0, path, "want 0 <= from < to <= 1e6 seconds, got [%g, %g)", b.From, b.To)
		}
		if b.ExtraMS <= 0 || b.ExtraMS > 100 {
			return errAt(0, path+".extra_ms", "want (0, 100] ms, got %g", b.ExtraMS)
		}
		if !burstClasses[b.Class] {
			return errAt(0, path+".class", "unknown link class %q (want external | internal | same-node | any)", b.Class)
		}
	}
	for i, tr := range sp.Faults.Truncate {
		path := fmt.Sprintf("faults.truncate[%d]", i)
		if tr.Rank < 0 || tr.Rank >= sp.Ranks {
			return errAt(0, path+".rank", "want 0..%d, got %d", sp.Ranks-1, tr.Rank)
		}
		if tr.Keep <= 0.01 || tr.Keep > 0.99 {
			return errAt(0, path+".keep", "want a fraction in (0.01, 0.99], got %g", tr.Keep)
		}
	}
	return nil
}
