package scenario

import (
	"math"
	"testing"

	"metascope"
)

// TestScenarioPipelineSmoke drives one small library scenario through
// the complete pipeline — compile, simulate, archive, synchronize,
// replay — and checks the analysis recovers the compiled expectation.
// This is the scenario smoke step script/check.sh runs under -race.
func TestScenarioPipelineSmoke(t *testing.T) {
	t.Parallel()
	p, err := LoadLibrary("halo1d")
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.Run("smoke-halo1d", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Analyze(metascope.Hierarchical)
	if err != nil {
		t.Fatal(err)
	}
	scale := 1 + e.Clocks().ForLoc(e.Place.Loc(0)).Drift
	checked := 0
	for key, ranks := range p.Expect.Keys {
		for r, want := range ranks {
			want *= scale
			got := res.Report.RankMetricTotal(key, r)
			if math.Abs(got-want) > 1e-9+1e-6*math.Abs(want) {
				t.Errorf("rank %d %s: got %.9g, want %.9g", r, key, got, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("expectation was empty; the smoke test checked nothing")
	}
}
