package scenario

import (
	"fmt"
	"sort"
	"strings"

	"metascope"
	"metascope/internal/archive"
	"metascope/internal/measure"
	"metascope/internal/pattern"
	"metascope/internal/topology"
)

// CompletionPerCall is the per-collective-call bound on incidental
// completion time (BarrierCompletion, NxNCompletion) a generated
// kernel may accumulate on the deterministic testbed. It mirrors
// conformance.CompletionBound — completion is dissemination skew, not
// planted imbalance, so it has no closed form; internal/conformance
// cross-checks the two constants stay equal.
const CompletionPerCall = 0.02

// Expectation is the closed-form analysis ground truth of a compiled
// scenario: what the replay analyzer must recover from the generated
// archive.
type Expectation struct {
	// Exact reports that the closed forms hold at conformance.ExactTol
	// under the interpolation schemes: deterministic links (no jitter,
	// dedicated), zero clock granularity, and route asymmetry disabled.
	Exact bool
	// Err marks scenarios whose archive is deliberately damaged
	// (truncation faults): analysis must fail with a structured error.
	Err bool
	// Horizon bounds the distance of any event from the start sync —
	// the FlatSingle drift-tolerance horizon.
	Horizon float64
	// Keys maps metric key → rank → expected inclusive severity in
	// true seconds (multiply by the master-clock scale for corrected
	// seconds). Keys absent here must analyze to exactly zero, except
	// those listed in Bounds.
	Keys map[string]map[int]float64
	// Bounds maps metric key → per-rank upper bound for metrics with
	// no closed form (collective completion).
	Bounds map[string]float64
	// Steps resolves Keys per aligned step: Steps[i] carries the same
	// metric key → rank → severity structure restricted to the
	// severities planted in step i, one entry per schedule phase (nil
	// maps for steps planting nothing). Summing Steps over i
	// reproduces Keys, and detected phase i of the analyzed archive
	// must match Steps[i] — the per-iteration oracle.
	Steps []map[string]map[int]float64
	// StepBounds maps metric key → per-rank per-step upper bound for
	// the completion metrics (one collective call per step).
	StepBounds map[string]float64
}

func (e *Expectation) add(key string, rank int, v float64) {
	if v <= 0 {
		return
	}
	m := e.Keys[key]
	if m == nil {
		m = make(map[int]float64)
		e.Keys[key] = m
	}
	m[rank] += v
}

// opKind is the blocking communication construct closing a rank's
// aligned step.
type opKind int

const (
	opNone opKind = iota
	opSendrecv
	opSend
	opRecv
	opBarrier
	opAllreduce
	opHandout // master: per-worker prep + Isend, then Waitall
	opCollect // master: Irecv every worker, then Waitall
)

type rankOp struct {
	kind    opKind
	peer    int
	workers []int     // opHandout/opCollect: peer ranks in post order
	prep    []float64 // opHandout: per-worker prep seconds, same order
}

// phase is one aligned global step of the compiled schedule.
type phase struct {
	name string
	at   float64 // absolute start time every rank sleeps to
	dur  float64
	work []float64 // per-rank pre-op work in seconds
	ops  []rankOp
}

// Program is a compiled scenario: topology recipe, aligned schedule,
// per-rank work tables, fault hooks, and the closed-form expectation.
type Program struct {
	Spec   *Spec
	Expect Expectation

	phases []phase
	locs   []topology.Loc
	speed  []float64
}

// planCtx carries the shared state kernel planners fill in.
type planCtx struct {
	sp       *Spec
	locs     []topology.Loc
	speed    []float64
	rng      *rng
	exp      *Expectation
	spanning bool // world communicator spans metahosts
	// step is the schedule index of the phase currently being planned;
	// planners set it before emitting expectations so add can resolve
	// them per step.
	step int
}

// add plants one expected severity in both the global table and the
// per-step table of the phase being planned. The global map is
// updated first with the identical call sequence the planners always
// produced, so the per-step resolution cannot perturb Keys' floats.
func (c *planCtx) add(key string, rank int, v float64) {
	if v <= 0 {
		return
	}
	c.exp.add(key, rank, v)
	for len(c.exp.Steps) <= c.step {
		c.exp.Steps = append(c.exp.Steps, nil)
	}
	m := c.exp.Steps[c.step]
	if m == nil {
		m = make(map[string]map[int]float64)
		c.exp.Steps[c.step] = m
	}
	sm := m[key]
	if sm == nil {
		sm = make(map[int]float64)
		m[key] = sm
	}
	sm[rank] += v
}

// stragglerFactor returns the work multiplier fault injection applies
// to the given rank in the given iteration.
func (c *planCtx) stragglerFactor(rank, iter int) float64 {
	f := 1.0
	for _, s := range c.sp.Faults.Stragglers {
		if s.Rank == rank && iter >= s.From && iter <= s.To {
			f *= s.Factor
		}
	}
	return f
}

// draw returns one work amount in seconds for the given rank and
// iteration: base + uniform spread, straggler-scaled, speed-scaled.
func (c *planCtx) draw(rank, iter int) float64 {
	w := c.sp.Work.Base + c.sp.Work.Spread*c.rng.float()
	return w * c.stragglerFactor(rank, iter) / c.speed[rank]
}

// crossMH reports whether two ranks sit on different metahosts — the
// grid-variant test for point-to-point instances.
func (c *planCtx) crossMH(a, b int) bool {
	return c.locs[a].Metahost != c.locs[b].Metahost
}

// Compile lowers a validated Spec into a Program. It builds the
// topology once to resolve placement and speeds, plans the kernel's
// aligned phases and work tables from the scenario PRNG, computes the
// schedule, and derives the expectation.
func (sp *Spec) Compile() (*Program, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	topo, place, err := sp.buildTopology()
	if err != nil {
		return nil, err
	}
	locs := append([]topology.Loc(nil), place.Ranks...)
	speed := make([]float64, len(locs))
	for r, loc := range locs {
		speed[r] = topo.Metahost(loc.Metahost).SpeedFor(sp.Kernel)
	}
	spanning := false
	for _, loc := range locs[1:] {
		if loc.Metahost != locs[0].Metahost {
			spanning = true
		}
	}
	ctx := &planCtx{
		sp:    sp,
		locs:  locs,
		speed: speed,
		rng:   newRNG(sp.Seed, sp.Kernel),
		exp: &Expectation{
			Keys:       make(map[string]map[int]float64),
			Bounds:     make(map[string]float64),
			StepBounds: make(map[string]float64),
		},
		spanning: spanning,
	}
	var phases []phase
	switch sp.Kernel {
	case KernelHalo1D:
		phases = planHalo1D(ctx)
	case KernelHalo2D:
		phases = planHalo2D(ctx)
	case KernelMasterWorker:
		phases = planMasterWorker(ctx)
	case KernelAMR:
		phases = planAMR(ctx)
	case KernelStraggler:
		phases = planStraggler(ctx)
	default:
		return nil, errAt(0, "kernel", "unknown kernel %q", sp.Kernel)
	}

	// Pad Steps to the full schedule so Steps[i] is addressable for
	// every phase, including trailing steps that plant nothing.
	for len(ctx.exp.Steps) < len(phases) {
		ctx.exp.Steps = append(ctx.exp.Steps, nil)
	}

	p := &Program{Spec: sp, Expect: *ctx.exp, phases: phases, locs: locs, speed: speed}
	if err := p.schedule(); err != nil {
		return nil, err
	}
	p.Expect.Exact = sp.exactTopology(topo)
	p.Expect.Err = len(sp.Faults.Truncate) > 0
	last := p.phases[len(p.phases)-1]
	p.Expect.Horizon = last.at + last.dur + 1.0
	if err := p.checkBurstWindows(); err != nil {
		return nil, err
	}
	p.completionBounds()
	return p, nil
}

// burstExtra returns the worst-case summed one-way latency injection
// (seconds) active at any instant.
func (sp *Spec) burstExtra() float64 {
	total := 0.0
	for _, b := range sp.Faults.CrossTraffic {
		total += b.ExtraMS * 1e-3
	}
	return total
}

// collRounds upper-bounds a dissemination collective's round count.
func collRounds(n int) int {
	r := 1
	for (1 << r) < n {
		r++
	}
	return r + 1
}

// schedule assigns each phase its aligned start time: the previous
// phase's start plus its worst-case duration (work plus op estimate)
// plus slack, widened for cross-traffic injection so an active burst
// can never make a rank overrun its next alignment point.
func (p *Program) schedule() error {
	sp := p.Spec
	margin := sp.Schedule.Slack + sp.burstExtra()*float64(collRounds(sp.Ranks)+2)
	at := sp.Schedule.Align
	for i := range p.phases {
		ph := &p.phases[i]
		ph.at = at
		worst := 0.0
		for r, w := range ph.work {
			est := w
			if ph.ops[r].kind == opHandout {
				for _, d := range ph.ops[r].prep {
					est += d
				}
			}
			if est > worst {
				worst = est
			}
		}
		ph.dur = worst + margin
		at += ph.dur
	}
	return nil
}

// checkBurstWindows rejects cross-traffic windows that would overlap
// the start or end clock-offset measurements: a burst straddling a
// ping-pong pair injects asymmetric latency and breaks the exactness
// the kernels' closed forms are checked under.
func (p *Program) checkBurstWindows() error {
	lastAt := p.phases[len(p.phases)-1].at
	align := p.Spec.Schedule.Align
	for i, b := range p.Spec.Faults.CrossTraffic {
		if b.From < align || b.To > lastAt {
			return errAt(0, fmt.Sprintf("faults.cross_traffic[%d]", i),
				"window [%g, %g) must lie within [schedule.align, start of the last phase] = [%g, %g] so clock synchronization stays undisturbed",
				b.From, b.To, align, lastAt)
		}
	}
	return nil
}

// completionBounds widens the per-call completion bound for scenarios
// with cross-traffic: dissemination rounds during a burst each pay
// the extra latency.
func (p *Program) completionBounds() {
	if len(p.Expect.Bounds) == 0 {
		return
	}
	extra := p.Spec.burstExtra() * float64(collRounds(p.Spec.Ranks))
	for k, v := range p.Expect.Bounds {
		calls := v / CompletionPerCall
		p.Expect.Bounds[k] = v + calls*extra
	}
	for k, v := range p.Expect.StepBounds {
		calls := v / CompletionPerCall
		p.Expect.StepBounds[k] = v + calls*extra
	}
}

// exactTopology reports whether the built topology keeps Cristian's
// offset measurements exact: deterministic dedicated links, zero read
// granularity, and no route asymmetry.
func (sp *Spec) exactTopology(topo *topology.Metacomputer) bool {
	if sp.Topology.Asymmetry {
		return false
	}
	det := func(l topology.Link) bool { return l.LatencySD == 0 && l.Dedicated }
	for _, m := range topo.Metahosts {
		if !det(m.Internal) || !det(m.NodeLocal) || m.Clock.Granularity != 0 {
			return false
		}
	}
	if !det(topo.DefaultExternal) {
		return false
	}
	for i := range topo.Metahosts {
		for j := i + 1; j < len(topo.Metahosts); j++ {
			if !det(topo.ExternalLink(i, j)) {
				return false
			}
		}
	}
	return true
}

// defaultShm is the node-local link used when a custom metahost does
// not specify one — the conformance testbed's shared-memory segment.
var defaultShm = topology.Link{LatencyMean: 2e-6, Bandwidth: 2e9, Dedicated: true}

func linkFromSpec(l *LinkSpec) topology.Link {
	out := topology.Link{
		LatencyMean: l.LatencyUS * 1e-6,
		LatencySD:   l.JitterUS * 1e-6,
		Bandwidth:   l.BandwidthGbps * 125e6,
		Dedicated:   true,
	}
	if l.Dedicated != nil {
		out.Dedicated = *l.Dedicated
	}
	return out
}

// placementBlocks returns the effective placement: the spec's blocks,
// or an even block split of the ranks over the metahosts.
func (sp *Spec) placementBlocks(metahosts int) []PlaceSpec {
	if len(sp.Placement) > 0 {
		return sp.Placement
	}
	n, m := sp.Ranks, metahosts
	if m > n {
		m = n
	}
	base, rem := n/m, n%m
	var out []PlaceSpec
	for i := 0; i < m; i++ {
		size := base
		if i < rem {
			size++
		}
		if size == 0 {
			continue
		}
		out = append(out, PlaceSpec{Metahost: i, Nodes: size, PerNode: 1})
	}
	return out
}

// buildTopology instantiates the metacomputer and placement a fresh
// time — placements are stateful, so every experiment needs its own.
func (sp *Spec) buildTopology() (*topology.Metacomputer, *topology.Placement, error) {
	t := &sp.Topology
	var mc *topology.Metacomputer
	var blocks []PlaceSpec
	switch {
	case len(t.Metahosts) > 0:
		mc = topology.New(sp.Name)
		for _, m := range t.Metahosts {
			mh := &topology.Metahost{
				Name: m.Name, Site: "scenario", Arch: "scenario model",
				Nodes: m.Nodes, CPUs: m.CPUs,
				Interconnect: "scenario", Internal: linkFromSpec(&m.Internal),
				NodeLocal: defaultShm,
				Clock: topology.ClockSpec{
					MaxOffset:    m.Clock.MaxOffsetMS * 1e-3,
					MaxDrift:     m.Clock.MaxDriftPPM * 1e-6,
					Granularity:  m.Clock.GranularityUS * 1e-6,
					Synchronized: m.Clock.Synchronized,
				},
				Speed: map[string]float64{"": m.Speed},
			}
			if m.NodeLocal != nil {
				mh.NodeLocal = linkFromSpec(m.NodeLocal)
			}
			mc.AddMetahost(mh)
		}
		mc.DefaultExternal = topology.Link{LatencyMean: 500e-6, Bandwidth: 1.25e9, Dedicated: true}
		blocks = sp.placementBlocks(len(t.Metahosts))
	case t.Preset == "conformance":
		blocks = sp.placementBlocks(t.Count)
		nodes := 1
		for _, b := range blocks {
			if need := b.FirstNode + b.Nodes; need > nodes {
				nodes = need
			}
		}
		mc = topology.ConformanceTestbed(t.Count, nodes)
	case t.Preset == "viola":
		mc = topology.VIOLA()
		blocks = sp.placementBlocks(len(mc.Metahosts))
	case t.Preset == "viola-shared":
		mc = topology.VIOLAShared()
		blocks = sp.placementBlocks(len(mc.Metahosts))
	case t.Preset == "ibm-power":
		mc = topology.IBMPower()
		blocks = sp.placementBlocks(len(mc.Metahosts))
	default:
		return nil, nil, errAt(0, "topology.preset", "unknown preset %q", t.Preset)
	}
	if t.External != nil {
		mc.DefaultExternal = linkFromSpec(t.External)
	}
	if err := mc.Validate(); err != nil {
		return nil, nil, errAt(0, "topology", "%v", err)
	}
	place := topology.NewPlacement(mc)
	for i, b := range blocks {
		if _, _, err := place.Place(b.Metahost, b.FirstNode, b.Nodes, b.PerNode); err != nil {
			return nil, nil, errAt(0, fmt.Sprintf("placement[%d]", i), "%v", err)
		}
	}
	if place.N() != sp.Ranks {
		return nil, nil, errAt(0, "placement", "placement covers %d ranks, scenario has ranks: %d", place.N(), sp.Ranks)
	}
	return mc, place, nil
}

// NewExperiment builds (but does not run) a measured experiment for
// the program: fresh topology and placement, route asymmetry disabled
// unless the scenario opts in, cross-traffic bursts installed, and
// the scenario's trace format selected.
func (p *Program) NewExperiment(title string, seed int64) (*metascope.Experiment, error) {
	sp := p.Spec
	topo, place, err := sp.buildTopology()
	if err != nil {
		return nil, err
	}
	e := metascope.NewExperiment(title, topo, place, seed)
	if !sp.Topology.Asymmetry {
		e.AsymFrac = -1
	}
	e.TraceFormat = sp.Format
	if bursts := sp.Faults.CrossTraffic; len(bursts) > 0 {
		bs := append([]BurstSpec(nil), bursts...)
		e.CrossTraffic = func(now float64, class topology.LinkClass) float64 {
			extra := 0.0
			for _, b := range bs {
				if now < b.From || now >= b.To {
					continue
				}
				switch b.Class {
				case "any":
				case "external":
					if class != topology.External {
						continue
					}
				case "internal":
					if class != topology.Internal {
						continue
					}
				case "same-node":
					if class != topology.SameNode {
						continue
					}
				}
				extra += b.ExtraMS * 1e-3
			}
			return extra
		}
	}
	if err := e.Build(); err != nil {
		return nil, err
	}
	return e, nil
}

// Body is the measured workload: every rank walks its aligned steps —
// sleep to the alignment point, elapse the planned work, issue the
// step's communication construct.
func (p *Program) Body(m *measure.M) {
	pr := m.Proc()
	w := m.World()
	r := m.Rank()
	m.InRegion(p.Spec.Kernel, func() {
		for pi := range p.phases {
			ph := &p.phases[pi]
			if pr.Now() > ph.at {
				pr.Engine().Fail(fmt.Errorf(
					"scenario %s: rank %d reached phase %q at t=%.6f, after its alignment point %.6f; raise schedule.slack",
					p.Spec.Name, r, ph.name, pr.Now(), ph.at))
				return
			}
			pr.Sim().SleepUntil(ph.at)
			if wk := ph.work[r]; wk > 0 {
				m.Elapse(wk)
			}
			op := ph.ops[r]
			tag := pi
			switch op.kind {
			case opSendrecv:
				w.Sendrecv(op.peer, tag, p.Spec.Bytes, op.peer, tag)
			case opSend:
				w.Send(op.peer, tag, p.Spec.Bytes)
			case opRecv:
				w.Recv(op.peer, tag)
			case opBarrier:
				w.Barrier()
			case opAllreduce:
				w.Allreduce(8)
			case opHandout:
				reqs := make([]*measure.Request, 0, len(op.workers))
				for i, wkr := range op.workers {
					m.Elapse(op.prep[i])
					reqs = append(reqs, w.Isend(wkr, tag, p.Spec.Bytes))
				}
				w.Waitall(reqs)
			case opCollect:
				reqs := make([]*measure.Request, 0, len(op.workers))
				for _, wkr := range op.workers {
					reqs = append(reqs, w.Irecv(wkr, tag))
				}
				w.Waitall(reqs)
			}
		}
	})
}

// Run measures the program through the normal pipeline and applies
// post-measurement faults to the archive.
func (p *Program) Run(title string, seed int64) (*metascope.Experiment, error) {
	e, err := p.NewExperiment(title, seed)
	if err != nil {
		return nil, err
	}
	if err := e.Run(p.Body); err != nil {
		return nil, err
	}
	if err := p.PostProcess(e.Mounts(), e.ArchiveDir); err != nil {
		return nil, err
	}
	return e, nil
}

// PostProcess applies archive-level faults after measurement: trace
// truncation cuts a rank's file to the configured fraction, modelling
// a rank that died mid-run.
func (p *Program) PostProcess(mounts *archive.Mounts, dir string) error {
	for _, tr := range p.Spec.Faults.Truncate {
		fs := mounts.For(p.locs[tr.Rank].Metahost)
		if fs == nil {
			return fmt.Errorf("scenario %s: no mount for rank %d's metahost %d",
				p.Spec.Name, tr.Rank, p.locs[tr.Rank].Metahost)
		}
		path := archive.TraceFile(dir, tr.Rank)
		data, err := archive.ReadFile(fs, path)
		if err != nil {
			return fmt.Errorf("scenario %s: truncating rank %d: %w", p.Spec.Name, tr.Rank, err)
		}
		keep := int(float64(len(data)) * tr.Keep)
		if keep < 1 {
			keep = 1
		}
		f, err := fs.Create(path)
		if err != nil {
			return fmt.Errorf("scenario %s: truncating rank %d: %w", p.Spec.Name, tr.Rank, err)
		}
		if _, err := f.Write(data[:keep]); err != nil {
			f.Close()
			return fmt.Errorf("scenario %s: truncating rank %d: %w", p.Spec.Name, tr.Rank, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("scenario %s: truncating rank %d: %w", p.Spec.Name, tr.Rank, err)
		}
	}
	return nil
}

// N returns the scenario's rank count.
func (p *Program) N() int { return p.Spec.Ranks }

// Phases returns the number of aligned steps in the schedule.
func (p *Program) Phases() int { return len(p.phases) }

// RankMetahost returns the metahost rank r was placed on — per-step
// oracles fold per-rank expectations to metahost granularity with it.
func (p *Program) RankMetahost(r int) int { return p.locs[r].Metahost }

// Describe renders the compiled plan: topology, placement, schedule,
// the closed-form expectation, and faults. The output is
// deterministic (sorted keys, fixed precision) so it golden-tests.
func (p *Program) Describe() string {
	sp := p.Spec
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %q: kernel %s, %d ranks, %d iterations, seed %d, format %s\n",
		sp.Name, sp.Kernel, sp.Ranks, sp.Iterations, sp.Seed, sp.Format)
	if len(sp.Topology.Metahosts) > 0 {
		fmt.Fprintf(&b, "topology: custom, %d metahosts\n", len(sp.Topology.Metahosts))
	} else {
		fmt.Fprintf(&b, "topology: %s preset\n", sp.Topology.Preset)
	}
	fmt.Fprintf(&b, "placement:\n")
	start := 0
	for start < len(p.locs) {
		end := start
		mh := p.locs[start].Metahost
		for end < len(p.locs) && p.locs[end].Metahost == mh {
			end++
		}
		fmt.Fprintf(&b, "  ranks %d-%d on metahost %d (speed %.3g)\n", start, end-1, mh, p.speed[start])
		start = end
	}
	last := p.phases[len(p.phases)-1]
	fmt.Fprintf(&b, "schedule: align %.3fs, %d phases, ends by t=%.3fs\n",
		sp.Schedule.Align, len(p.phases), last.at+last.dur)
	for i, ph := range p.phases {
		fmt.Fprintf(&b, "  phase %2d  %-18s t=%8.3f  dur=%7.3f\n", i, ph.name, ph.at, ph.dur)
	}
	fmt.Fprintf(&b, "expectation (true seconds, before master-clock scaling; exact=%v):\n", p.Expect.Exact)
	keys := make([]string, 0, len(p.Expect.Keys))
	for k := range p.Expect.Keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %s:\n", k)
		m := p.Expect.Keys[k]
		ranks := make([]int, 0, len(m))
		for r := range m {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			fmt.Fprintf(&b, "    rank %3d: %12.9f\n", r, m[r])
		}
	}
	bkeys := make([]string, 0, len(p.Expect.Bounds))
	for k := range p.Expect.Bounds {
		bkeys = append(bkeys, k)
	}
	sort.Strings(bkeys)
	for _, k := range bkeys {
		fmt.Fprintf(&b, "  %s <= %.6f per rank (completion bound)\n", k, p.Expect.Bounds[k])
	}
	if f := sp.Faults; len(f.Stragglers)+len(f.CrossTraffic)+len(f.Truncate) > 0 {
		fmt.Fprintf(&b, "faults:\n")
		for _, s := range f.Stragglers {
			fmt.Fprintf(&b, "  straggler rank %d x%.3g over iterations %d-%d\n", s.Rank, s.Factor, s.From, s.To)
		}
		for _, c := range f.CrossTraffic {
			fmt.Fprintf(&b, "  cross-traffic +%.3gms on %s links over [%.3f, %.3f)\n", c.ExtraMS, c.Class, c.From, c.To)
		}
		for _, tr := range f.Truncate {
			fmt.Fprintf(&b, "  truncate rank %d trace to %.0f%% (analysis must fail)\n", tr.Rank, tr.Keep*100)
		}
	}
	if p.Expect.Err {
		fmt.Fprintf(&b, "analysis: expected to FAIL (damaged archive)\n")
	}
	return b.String()
}

// GridKeyFor maps a base metric to its grid child — a convenience for
// tests asserting on the pattern keys kernels fill.
func GridKeyFor(base string) string {
	switch base {
	case pattern.KeyLateSender:
		return pattern.KeyGridLS
	case pattern.KeyWaitBarrier:
		return pattern.KeyGridWB
	case pattern.KeyWaitNxN:
		return pattern.KeyGridNxN
	}
	return ""
}
