package vclock

import (
	"math"
	"testing"
	"testing/quick"

	"metascope/internal/sim"
	"metascope/internal/topology"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestClockReadLinearModel(t *testing.T) {
	c := &Clock{Offset: 1.5, Drift: 1e-4}
	if got := c.Read(0); got != 1.5 {
		t.Errorf("Read(0) = %g", got)
	}
	if got := c.Read(1000); !approx(got, 1.5+1000*1.0001, 1e-9) {
		t.Errorf("Read(1000) = %g", got)
	}
}

func TestClockGranularityFloors(t *testing.T) {
	c := &Clock{Offset: 0, Drift: 0, Granularity: 1e-6}
	if got := c.Read(3.4567891234); !approx(got, 3.456789, 1e-12) {
		t.Errorf("granular read = %.10f", got)
	}
	// Readings never decrease under granularity.
	prev := math.Inf(-1)
	for i := 0; i < 1000; i++ {
		g := c.Read(float64(i) * 1e-7)
		if g < prev {
			t.Fatalf("granular clock went backwards")
		}
		prev = g
	}
}

func TestLinearMapApplyComposeInvert(t *testing.T) {
	m := LinearMap{A: 2, B: 3}
	if m.Apply(4) != 14 {
		t.Errorf("Apply = %g", m.Apply(4))
	}
	inner := LinearMap{A: -1, B: 0.5}
	comp := m.Compose(inner)
	for _, x := range []float64{-3, 0, 1, 7.5} {
		if !approx(comp.Apply(x), m.Apply(inner.Apply(x)), 1e-12) {
			t.Errorf("compose mismatch at %g", x)
		}
	}
	inv, err := m.Invert()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-3, 0, 1, 7.5} {
		if !approx(inv.Apply(m.Apply(x)), x, 1e-9) {
			t.Errorf("inverse mismatch at %g", x)
		}
	}
	if _, err := (LinearMap{A: 1, B: 0}).Invert(); err == nil {
		t.Errorf("singular map inverted")
	}
}

// Property: composition is associative and identity is neutral.
func TestLinearMapAlgebraProperties(t *testing.T) {
	sane := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 1
		}
		return math.Mod(v, 100)
	}
	f := func(a1, b1, a2, b2, x float64) bool {
		m1 := LinearMap{A: sane(a1), B: sane(b1) + 2} // keep B away from 0
		m2 := LinearMap{A: sane(a2), B: sane(b2) + 2}
		x = sane(x)
		lhs := m1.Compose(m2).Apply(x)
		rhs := m1.Apply(m2.Apply(x))
		idl := Identity().Compose(m1)
		idr := m1.Compose(Identity())
		return approx(lhs, rhs, 1e-6*(1+math.Abs(lhs))) &&
			approx(idl.Apply(x), m1.Apply(x), 1e-9) &&
			approx(idr.Apply(x), m1.Apply(x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestInterpMapRecoversLinearClockExactly(t *testing.T) {
	// A slave clock s(t) and master clock m(t): the interpolation built
	// from two exact offset measurements must map slave readings onto
	// master readings exactly (linear through two points).
	slave := &Clock{Offset: -3, Drift: 5e-5}
	master := &Clock{Offset: 2, Drift: -1e-5}
	t1, t2 := 10.0, 500.0
	s1, s2 := slave.Read(t1), slave.Read(t2)
	o1, o2 := master.Read(t1)-s1, master.Read(t2)-s2
	m := InterpMap(s1, o1, s2, o2)
	for _, tt := range []float64{0, 10, 123.4, 500, 1000} {
		got := m.Apply(slave.Read(tt))
		want := master.Read(tt)
		if !approx(got, want, 1e-6) {
			t.Errorf("t=%g: corrected %.9f, want %.9f", tt, got, want)
		}
	}
}

func TestInterpMapDegeneratePoints(t *testing.T) {
	m := InterpMap(5, 0.25, 5, 0.75) // same measurement instant
	if m != SingleOffsetMap(0.25) {
		t.Errorf("degenerate interpolation = %+v", m)
	}
}

func TestSingleOffsetMap(t *testing.T) {
	m := SingleOffsetMap(2.5)
	if m.Apply(10) != 12.5 {
		t.Errorf("Apply = %g", m.Apply(10))
	}
}

func TestSchemeStringAndParse(t *testing.T) {
	for s, want := range map[Scheme]string{
		FlatSingle:   "single flat offset",
		FlatInterp:   "two flat offsets",
		Hierarchical: "two hierarchical offsets",
	} {
		if s.String() != want {
			t.Errorf("%v String = %q", int(s), s.String())
		}
	}
	for in, want := range map[string]Scheme{
		"flat1": FlatSingle, "single": FlatSingle,
		"flat2": FlatInterp, "interp": FlatInterp,
		"hier": Hierarchical, "hierarchical": Hierarchical,
	} {
		got, err := ParseScheme(in)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Errorf("bogus scheme parsed")
	}
}

func TestBuildFlatSingleIgnoresDrift(t *testing.T) {
	start := []Measurement{{Local: 0, Offset: 0}, {Local: 10, Offset: 2}}
	corr, err := BuildFlat(FlatSingle, start, nil)
	if err != nil {
		t.Fatal(err)
	}
	if corr[1].Map.Apply(100) != 102 {
		t.Errorf("FlatSingle correction wrong: %g", corr[1].Map.Apply(100))
	}
	if corr[1].Map.B != 1 {
		t.Errorf("FlatSingle must not compensate drift (B=%g)", corr[1].Map.B)
	}
}

func TestBuildFlatInterpValidation(t *testing.T) {
	start := make([]Measurement, 3)
	if _, err := BuildFlat(FlatInterp, start, make([]Measurement, 2)); err == nil {
		t.Errorf("mismatched end measurements accepted")
	}
	if _, err := BuildFlat(Hierarchical, start, start); err == nil {
		t.Errorf("BuildFlat accepted hierarchical scheme")
	}
}

func TestBuildHierarchicalComposition(t *testing.T) {
	// Three linear clocks: metamaster M, local master L, slave S.
	M := &Clock{Offset: 0, Drift: 0}
	L := &Clock{Offset: 1, Drift: 2e-5}
	S := &Clock{Offset: -2, Drift: -1e-5}
	t1, t2 := 5.0, 400.0

	meas := func(from, to *Clock, tt float64) Measurement {
		return Measurement{Local: from.Read(tt), Offset: to.Read(tt) - from.Read(tt)}
	}
	in := HierarchicalInput{
		Rank:        1,
		SlaveStart:  meas(S, L, t1),
		SlaveEnd:    meas(S, L, t2),
		MasterStart: meas(L, M, t1),
		MasterEnd:   meas(L, M, t2),
	}
	corr := BuildHierarchical([]HierarchicalInput{in})
	for _, tt := range []float64{0, 5, 100, 400, 777} {
		got := corr[0].Map.Apply(S.Read(tt))
		want := M.Read(tt)
		if !approx(got, want, 1e-6) {
			t.Errorf("t=%g: %.9f want %.9f", tt, got, want)
		}
	}
}

func TestBuildHierarchicalSharedNodeClock(t *testing.T) {
	// With a shared node clock the slave step is skipped and only the
	// local-master map applies.
	in := HierarchicalInput{
		SharedNodeClock: true,
		MasterStart:     Measurement{Local: 0, Offset: 5},
		MasterEnd:       Measurement{Local: 100, Offset: 5},
	}
	corr := BuildHierarchical([]HierarchicalInput{in})
	if got := corr[0].Map.Apply(50); !approx(got, 55, 1e-9) {
		t.Errorf("shared-clock correction = %g, want 55", got)
	}
}

// Property: for arbitrary linear clocks, hierarchical composition from
// exact measurements reproduces the master time to numerical accuracy
// (the correctness argument behind §4's scheme).
func TestHierarchicalExactnessProperty(t *testing.T) {
	f := func(lOff, lDrift, sOff, sDrift, probe float64) bool {
		clampOff := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 10)
		}
		clampDrift := func(v float64) float64 { return clampOff(v) * 1e-5 }
		L := &Clock{Offset: clampOff(lOff), Drift: clampDrift(lDrift)}
		S := &Clock{Offset: clampOff(sOff), Drift: clampDrift(sDrift)}
		M := &Clock{}
		probe = math.Abs(clampOff(probe)) * 50
		meas := func(from, to *Clock, tt float64) Measurement {
			return Measurement{Local: from.Read(tt), Offset: to.Read(tt) - from.Read(tt)}
		}
		in := HierarchicalInput{
			SlaveStart: meas(S, L, 1), SlaveEnd: meas(S, L, 301),
			MasterStart: meas(L, M, 1), MasterEnd: meas(L, M, 301),
		}
		corr := BuildHierarchical([]HierarchicalInput{in})
		got := corr[0].Map.Apply(S.Read(probe))
		return approx(got, M.Read(probe), 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateRespectsTopology(t *testing.T) {
	eng := sim.NewEngine(11)
	mc := topology.VIOLA()
	set := Generate(eng, mc)
	// Same node → same clock; different nodes → different clocks.
	a := set.ForLoc(topology.Loc{Metahost: 2, Node: 0, CPU: 0})
	b := set.ForLoc(topology.Loc{Metahost: 2, Node: 0, CPU: 1})
	c := set.ForLoc(topology.Loc{Metahost: 2, Node: 1, CPU: 0})
	if a != b {
		t.Errorf("same-node processes got different clocks")
	}
	if a == c {
		t.Errorf("different nodes share a clock object")
	}
	spec := mc.Metahost(2).Clock
	if math.Abs(a.Offset) > spec.MaxOffset {
		t.Errorf("offset %g exceeds bound %g", a.Offset, spec.MaxOffset)
	}
	if math.Abs(a.Drift) > spec.MaxDrift {
		t.Errorf("drift %g exceeds bound %g", a.Drift, spec.MaxDrift)
	}
	if a.Granularity != spec.Granularity {
		t.Errorf("granularity not propagated")
	}
}

func TestGenerateSynchronizedMetahost(t *testing.T) {
	eng := sim.NewEngine(11)
	mc := topology.New("sync")
	link := topology.Link{LatencyMean: 1e-5, Bandwidth: 1e9}
	mc.AddMetahost(&topology.Metahost{
		Name: "BGL", Nodes: 4, CPUs: 2,
		Internal: link, NodeLocal: link,
		Clock: topology.ClockSpec{MaxOffset: 1, MaxDrift: 1e-5, Synchronized: true},
	})
	set := Generate(eng, mc)
	first := set.ForLoc(topology.Loc{Metahost: 0, Node: 0})
	for n := 1; n < 4; n++ {
		if set.ForLoc(topology.Loc{Metahost: 0, Node: n}) != first {
			t.Fatalf("synchronized metahost has per-node clocks")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	mc := topology.VIOLA()
	a := Generate(sim.NewEngine(5), mc)
	b := Generate(sim.NewEngine(5), mc)
	la := topology.Loc{Metahost: 1, Node: 3}
	if *a.ForLoc(la) != *b.ForLoc(la) {
		t.Errorf("same seed produced different clocks")
	}
	c := Generate(sim.NewEngine(6), mc)
	if *a.ForLoc(la) == *c.ForLoc(la) {
		t.Errorf("different seeds produced identical clocks")
	}
}

func TestMaxDivergenceGrowsWithDrift(t *testing.T) {
	eng := sim.NewEngine(11)
	set := Generate(eng, topology.VIOLA())
	d0 := set.MaxDivergence(0)
	d1 := set.MaxDivergence(10000)
	if d0 <= 0 {
		t.Fatalf("no initial divergence (offsets all zero?)")
	}
	if d1 <= d0 {
		t.Errorf("divergence did not grow with drift: %g -> %g", d0, d1)
	}
}

func TestForLocUnknownPanics(t *testing.T) {
	eng := sim.NewEngine(11)
	set := Generate(eng, topology.VIOLA())
	defer func() {
		if recover() == nil {
			t.Errorf("unknown location did not panic")
		}
	}()
	set.ForLoc(topology.Loc{Metahost: 9, Node: 9})
}
