package vclock

import (
	"strings"
	"testing"
)

func TestBuilderMatchesBuildFlat(t *testing.T) {
	start := []Measurement{{Local: 1, Offset: 0.5}, {Local: 1.1, Offset: -0.2}, {Local: 0.9, Offset: 0}}
	end := []Measurement{{Local: 99, Offset: 0.52}, {Local: 99.1, Offset: -0.23}, {Local: 98.9, Offset: 0}}
	for _, scheme := range []Scheme{FlatSingle, FlatInterp} {
		want, err := BuildFlat(scheme, start, end)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBuilder(scheme, len(start))
		// Set out of order: corrections are rank-local, order must not matter.
		for _, r := range []int{2, 0, 1} {
			m, err := FlatCorrection(scheme, start[r], end[r])
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Set(r, m); err != nil {
				t.Fatal(err)
			}
		}
		if !b.Complete() {
			t.Fatalf("%v: builder incomplete after all ranks set", scheme)
		}
		got, err := b.Corrections()
		if err != nil {
			t.Fatal(err)
		}
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("%v rank %d: incremental %+v != batch %+v", scheme, r, got[r], want[r])
			}
		}
	}
}

func TestBuilderMatchesBuildHierarchical(t *testing.T) {
	inputs := []HierarchicalInput{
		{Rank: 0, MasterStart: Measurement{Local: 1, Offset: 0}, MasterEnd: Measurement{Local: 99, Offset: 0}, SharedNodeClock: true},
		{Rank: 1,
			SlaveStart: Measurement{Local: 1.2, Offset: 0.01}, SlaveEnd: Measurement{Local: 99.2, Offset: 0.012},
			MasterStart: Measurement{Local: 1, Offset: -0.5}, MasterEnd: Measurement{Local: 99, Offset: -0.49}},
	}
	want := BuildHierarchical(inputs)
	b := NewBuilder(Hierarchical, len(inputs))
	for i := len(inputs) - 1; i >= 0; i-- {
		if err := b.Set(inputs[i].Rank, HierarchicalCorrection(inputs[i])); err != nil {
			t.Fatal(err)
		}
	}
	got, err := b.Corrections()
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("rank %d: incremental %+v != batch %+v", r, got[r], want[r])
		}
	}
}

func TestBuilderIdempotentAndConflicts(t *testing.T) {
	b := NewBuilder(FlatInterp, 2)
	m := SingleOffsetMap(0.5)
	if err := b.Set(0, m); err != nil {
		t.Fatal(err)
	}
	if err := b.Set(0, m); err != nil { // retry of the same chunk
		t.Fatalf("idempotent re-set failed: %v", err)
	}
	if err := b.Set(0, SingleOffsetMap(0.6)); err == nil {
		t.Fatal("conflicting re-set accepted")
	}
	if err := b.Set(5, m); err == nil {
		t.Fatal("out-of-world rank accepted")
	}
	if b.Complete() {
		t.Fatal("Complete with rank 1 missing")
	}
	if _, err := b.Corrections(); err == nil || !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("Corrections err = %v, want missing rank 1", err)
	}
	if !b.Have(0) || b.Have(1) {
		t.Fatal("Have mismatch")
	}
	if b.Map(1) != Identity() {
		t.Fatal("Map of unset rank is not identity")
	}
	if err := b.Set(1, m); err != nil {
		t.Fatal(err)
	}
	if cs, err := b.Corrections(); err != nil || len(cs) != 2 {
		t.Fatalf("Corrections = (%v, %v)", cs, err)
	}
}

func TestFlatCorrectionRejectsHierarchical(t *testing.T) {
	if _, err := FlatCorrection(Hierarchical, Measurement{}, Measurement{}); err == nil {
		t.Fatal("FlatCorrection accepted Hierarchical")
	}
}
