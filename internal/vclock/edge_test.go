package vclock

import (
	"math"
	"strings"
	"testing"
)

// TestInterpMapZeroDuration: when both offset measurements coincide in
// time — a zero-duration run, or a crash right after initialization —
// the interpolation must degrade to the plain offset map instead of
// dividing by zero.
func TestInterpMapZeroDuration(t *testing.T) {
	m := InterpMap(3.5, 0.25, 3.5, 0.75)
	want := SingleOffsetMap(0.25)
	if m != want {
		t.Errorf("zero-duration interpolation = %+v, want offset map %+v", m, want)
	}
	if got := m.Apply(10); got != 10.25 {
		t.Errorf("degraded map applies as %g, want 10.25", got)
	}
}

// TestInterpMapEndpoints: the interpolation is defined by passing
// through both measurements exactly — m(s1) = s1+o1 and m(s2) = s2+o2 —
// including with negative offsets and with the "end" measurement taken
// before the "start" (the formula is symmetric in the two points).
func TestInterpMapEndpoints(t *testing.T) {
	cases := []struct{ s1, o1, s2, o2 float64 }{
		{0, 0.5, 10, 0.7},
		{0, -0.5, 10, -0.9},         // negative offsets: slave ahead of master
		{2, -1e-3, 1, 1e-3},         // end before start
		{-5, 0.1, 5, -0.1},          // negative local times
		{1e6, 2e-6, 1e6 + 60, 3e-6}, // long-run magnitudes
	}
	for _, c := range cases {
		m := InterpMap(c.s1, c.o1, c.s2, c.o2)
		if got, want := m.Apply(c.s1), c.s1+c.o1; math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("InterpMap(%v): m(s1) = %.12g, want %.12g", c, got, want)
		}
		if got, want := m.Apply(c.s2), c.s2+c.o2; math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("InterpMap(%v): m(s2) = %.12g, want %.12g", c, got, want)
		}
	}
}

// TestComposeInvertRoundTrip: corrections are composed and inverted
// when moving between time bases; the algebra must hold numerically.
func TestComposeInvertRoundTrip(t *testing.T) {
	m := LinearMap{A: 0.37, B: 1 + 4.2e-6}
	inv, err := m.Invert()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-10, 0, 1e-9, 123.456, 1e7} {
		if got := inv.Apply(m.Apply(x)); math.Abs(got-x) > 1e-6*math.Max(1, math.Abs(x)) {
			t.Errorf("inv(m(%g)) = %.12g", x, got)
		}
	}
	id := m.Compose(Identity())
	if id != m {
		t.Errorf("m∘id = %+v, want %+v", id, m)
	}
	if got := Identity().Compose(m); got != m {
		t.Errorf("id∘m = %+v, want %+v", got, m)
	}
	if _, err := (LinearMap{A: 1, B: 0}).Invert(); err == nil {
		t.Error("singular map inverted without error")
	}
}

// TestBuildFlatErrors: the flat builder must reject the hierarchical
// scheme and mismatched measurement slices with named errors.
func TestBuildFlatErrors(t *testing.T) {
	if _, err := BuildFlat(Hierarchical, make([]Measurement, 2), make([]Measurement, 2)); err == nil ||
		!strings.Contains(err.Error(), "BuildHierarchical") {
		t.Errorf("hierarchical scheme through BuildFlat: %v", err)
	}
	if _, err := BuildFlat(FlatInterp, make([]Measurement, 3), make([]Measurement, 2)); err == nil ||
		!strings.Contains(err.Error(), "measurements") {
		t.Errorf("mismatched slices: %v", err)
	}
	// FlatSingle ignores the end slice entirely; a mismatch is fine.
	if _, err := BuildFlat(FlatSingle, make([]Measurement, 3), nil); err != nil {
		t.Errorf("FlatSingle with nil end measurements: %v", err)
	}
}

// TestBuildHierarchicalSingleMetahost: in a single-metahost federation
// the local master IS the metamaster, so its own measurements are zero
// maps and the composition must reduce to the slave interpolation alone.
func TestBuildHierarchicalSingleMetahost(t *testing.T) {
	in := HierarchicalInput{
		Rank:       1,
		SlaveStart: Measurement{Local: 0, Offset: 0.5},
		SlaveEnd:   Measurement{Local: 10, Offset: 0.6},
		// MasterStart/MasterEnd zero: identity composition.
	}
	got := BuildHierarchical([]HierarchicalInput{in})[0]
	want := InterpMap(0, 0.5, 10, 0.6)
	if got.Rank != 1 {
		t.Errorf("rank = %d, want 1", got.Rank)
	}
	if math.Abs(got.Map.A-want.A) > 1e-12 || math.Abs(got.Map.B-want.B) > 1e-12 {
		t.Errorf("single-metahost correction = %+v, want slave interpolation %+v", got.Map, want)
	}
}

// TestSharedNodeClockIgnoresSlaveMeasurements: with hardware clock
// synchronization the slave step is skipped entirely — whatever junk
// the slave measurements hold must not leak into the correction.
func TestSharedNodeClockIgnoresSlaveMeasurements(t *testing.T) {
	in := HierarchicalInput{
		Rank:            2,
		SlaveStart:      Measurement{Local: 1, Offset: 99}, // must be ignored
		SlaveEnd:        Measurement{Local: 2, Offset: 99},
		MasterStart:     Measurement{Local: 0, Offset: 0.25},
		MasterEnd:       Measurement{Local: 20, Offset: 0.35},
		SharedNodeClock: true,
	}
	got := BuildHierarchical([]HierarchicalInput{in})[0].Map
	want := InterpMap(0, 0.25, 20, 0.35)
	if got != want {
		t.Errorf("shared-clock correction = %+v, want master interpolation %+v", got, want)
	}
}

// TestBuildHierarchicalRecoversTrueClocks: end-to-end on exact
// measurements — slave and local master drawn as linear clocks, offsets
// computed analytically at two instants — the composed correction must
// equal master∘slave⁻¹, i.e. recover every true timestamp exactly. This
// pins the algebra the conformance oracle's exactness argument rests on.
func TestBuildHierarchicalRecoversTrueClocks(t *testing.T) {
	slave := Clock{Offset: -2.5e-3, Drift: 1.7e-6}
	local := Clock{Offset: 1.2e-3, Drift: -0.8e-6}
	meta := Clock{Offset: 0.4e-3, Drift: 0.3e-6}
	// Exact offsets at true times t1 and t2: offset = other(t) − own(t).
	measure := func(own, other Clock, tt float64) Measurement {
		return Measurement{Local: own.Read(tt), Offset: other.Read(tt) - own.Read(tt)}
	}
	in := HierarchicalInput{
		SlaveStart:  measure(slave, local, 0.1),
		SlaveEnd:    measure(slave, local, 9.9),
		MasterStart: measure(local, meta, 0.1),
		MasterEnd:   measure(local, meta, 9.9),
	}
	corr := BuildHierarchical([]HierarchicalInput{in})[0].Map
	for _, tt := range []float64{0.1, 1, 5, 9.9, 20} {
		got := corr.Apply(slave.Read(tt))
		want := meta.Read(tt)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("t=%g: corrected slave reading %.12g, want metamaster %.12g", tt, got, want)
		}
	}
}

// TestClockGranularityQuantizes: a positive granularity floors readings
// to its multiple; zero granularity must leave readings untouched (the
// conformance testbed relies on this).
func TestClockGranularityQuantizes(t *testing.T) {
	c := Clock{Offset: 0, Drift: 0, Granularity: 1e-3}
	if got := c.Read(0.0127); math.Abs(got-0.012) > 1e-15 {
		t.Errorf("quantized read = %.15g, want 0.012", got)
	}
	exact := Clock{Offset: 0.5, Drift: 1e-6}
	if got, want := exact.Read(3), exact.TrueMap().Apply(3); got != want {
		t.Errorf("granularity-free read = %.15g, want %.15g", got, want)
	}
}
