package vclock

import (
	"errors"
	"fmt"
)

// FlatCorrection builds the correction map for one rank under a flat
// scheme from its own measurements against the global master: the
// single start offset for FlatSingle, the start/end interpolation for
// FlatInterp. It is the per-rank core of BuildFlat, exposed so a live
// session can construct each rank's correction the moment that rank's
// sync block arrives, without waiting for the rest of the archive.
func FlatCorrection(scheme Scheme, start, end Measurement) (LinearMap, error) {
	switch scheme {
	case FlatSingle:
		return SingleOffsetMap(start.Offset), nil
	case FlatInterp:
		return InterpMap(start.Local, start.Offset, end.Local, end.Offset), nil
	default:
		return LinearMap{}, errors.New("vclock: FlatCorrection cannot build hierarchical corrections; use HierarchicalCorrection")
	}
}

// HierarchicalCorrection composes one rank's slave→local-master
// interpolation with its local master's →metamaster interpolation —
// the per-rank core of BuildHierarchical. Like FlatCorrection, every
// input is rank-local, so the map is available as soon as that rank's
// header has been ingested.
func HierarchicalCorrection(in HierarchicalInput) LinearMap {
	toLocal := Identity()
	if !in.SharedNodeClock {
		toLocal = InterpMap(in.SlaveStart.Local, in.SlaveStart.Offset,
			in.SlaveEnd.Local, in.SlaveEnd.Offset)
	}
	toMeta := InterpMap(in.MasterStart.Local, in.MasterStart.Offset,
		in.MasterEnd.Local, in.MasterEnd.Offset)
	return toMeta.Compose(toLocal)
}

// Builder accumulates per-rank corrections as rank headers arrive in
// arbitrary order, for a world of known size. All three schemes derive
// each rank's map from that rank's own sync block alone, which is what
// makes incremental synchronization over a prefix of the archive
// sound: a correction never changes once set.
type Builder struct {
	scheme Scheme
	maps   []LinearMap
	have   []bool
	n      int
}

// NewBuilder returns a Builder for a world of n ranks.
func NewBuilder(scheme Scheme, n int) *Builder {
	return &Builder{scheme: scheme, maps: make([]LinearMap, n), have: make([]bool, n)}
}

// Set records rank's correction map. Re-setting a rank to the same map
// is idempotent (chunked-upload retries); a different map is an error.
func (b *Builder) Set(rank int, m LinearMap) error {
	if rank < 0 || rank >= len(b.maps) {
		return fmt.Errorf("vclock: correction for rank %d outside world of %d", rank, len(b.maps))
	}
	if b.have[rank] {
		if b.maps[rank] != m {
			return fmt.Errorf("vclock: conflicting corrections for rank %d", rank)
		}
		return nil
	}
	b.maps[rank] = m
	b.have[rank] = true
	b.n++
	return nil
}

// Have reports whether rank's correction has been set.
func (b *Builder) Have(rank int) bool {
	return rank >= 0 && rank < len(b.have) && b.have[rank]
}

// Map returns rank's correction map (the identity if not yet set).
func (b *Builder) Map(rank int) LinearMap {
	if !b.Have(rank) {
		return Identity()
	}
	return b.maps[rank]
}

// Complete reports whether every rank's correction has been set.
func (b *Builder) Complete() bool { return b.n == len(b.maps) }

// Corrections returns the full correction set in rank order, or an
// error naming the first missing rank.
func (b *Builder) Corrections() ([]Correction, error) {
	if !b.Complete() {
		for r, ok := range b.have {
			if !ok {
				return nil, fmt.Errorf("vclock: no correction for rank %d (%d of %d set)",
					r, b.n, len(b.maps))
			}
		}
	}
	out := make([]Correction, len(b.maps))
	for r, m := range b.maps {
		out[r] = Correction{Rank: r, Map: m}
	}
	return out, nil
}

// Scheme returns the scheme the builder was created for.
func (b *Builder) Scheme() Scheme { return b.scheme }
