// Package vclock models the unsynchronized node-local clocks of a
// metacomputer and the algorithms that map their readings back onto a
// common time base.
//
// Following the paper (§3, Figure 1), every node clock is assumed to be
// a linear function of true time — an initial offset plus a constant
// drift — optionally quantized by a read granularity. Processes on the
// same SMP node share a clock ("we assume that time stamps taken on the
// same node are already synchronized").
//
// Three synchronization schemes are provided, matching Table 2:
//
//	FlatSingle   — one offset measurement per slave against the global
//	               master at program start; no drift compensation.
//	FlatInterp   — two offset measurements (start and end) per slave
//	               against the global master; linear interpolation
//	               (KOJAK/SCALASCA's previous method).
//	Hierarchical — the paper's contribution: slaves measure against a
//	               local master on their own metahost, local masters
//	               measure against a global metamaster, and the two
//	               linear maps are composed.
package vclock

import (
	"errors"
	"fmt"
	"math"

	"metascope/internal/obs"
	"metascope/internal/sim"
	"metascope/internal/topology"
)

// Clock is a node-local clock: local(t) = Offset + (1+Drift)·t, rounded
// down to a multiple of Granularity when Granularity > 0.
type Clock struct {
	Offset      float64
	Drift       float64
	Granularity float64
}

// Read converts true (simulation) time into a local clock reading.
func (c *Clock) Read(global float64) float64 {
	local := c.Offset + (1+c.Drift)*global
	if c.Granularity > 0 {
		local = math.Floor(local/c.Granularity) * c.Granularity
	}
	return local
}

// TrueMap returns the exact global→local mapping, ignoring granularity.
// Tests use it as ground truth for synchronization accuracy.
func (c *Clock) TrueMap() LinearMap {
	return LinearMap{A: c.Offset, B: 1 + c.Drift}
}

// LinearMap is an affine time transformation y = A + B·x. Offset
// corrections, drift interpolation, and their compositions are all
// linear maps.
type LinearMap struct {
	A float64
	B float64
}

// Identity returns the map y = x.
func Identity() LinearMap { return LinearMap{A: 0, B: 1} }

// Apply evaluates the map at x.
func (m LinearMap) Apply(x float64) float64 { return m.A + m.B*x }

// Compose returns the map x ↦ m(inner(x)).
func (m LinearMap) Compose(inner LinearMap) LinearMap {
	return LinearMap{A: m.A + m.B*inner.A, B: m.B * inner.B}
}

// Invert returns the inverse map, or an error if the map is singular
// (B == 0), which cannot arise from physical clocks.
func (m LinearMap) Invert() (LinearMap, error) {
	if m.B == 0 {
		return LinearMap{}, errors.New("vclock: cannot invert singular time map")
	}
	return LinearMap{A: -m.A / m.B, B: 1 / m.B}, nil
}

// SingleOffsetMap builds the correction used by FlatSingle: one offset
// o measured once; corrected(s) = s + o.
func SingleOffsetMap(o float64) LinearMap { return LinearMap{A: o, B: 1} }

// InterpMap builds the two-measurement linear interpolation of §3:
// offsets o1 at local time s1 and o2 at local time s2 yield
//
//	m(s) = s + o1 + (s − s1)·(o2 − o1)/(s2 − s1)
//
// mapping slave-local time onto master time. If the two measurements
// coincide in time the drift term is dropped (plain offset map).
func InterpMap(s1, o1, s2, o2 float64) LinearMap {
	if s2 == s1 {
		return SingleOffsetMap(o1)
	}
	slope := (o2 - o1) / (s2 - s1)
	// s + o1 + (s-s1)*slope  ==  (o1 - s1*slope) + s*(1+slope)
	return LinearMap{A: o1 - s1*slope, B: 1 + slope}
}

// Measurement is one remote-clock-reading result: at slave-local time
// Local, the master's clock was estimated to lead the slave's by
// Offset (master ≈ local + Offset). Err is the half-round-trip error
// bound of Cristian's method, kept for diagnostics.
type Measurement struct {
	Local  float64
	Offset float64
	Err    float64
}

// Scheme selects a time-stamp synchronization algorithm.
type Scheme int

// The three schemes compared in Table 2 of the paper.
const (
	FlatSingle Scheme = iota
	FlatInterp
	Hierarchical
)

// String names the scheme as in Table 2.
func (s Scheme) String() string {
	switch s {
	case FlatSingle:
		return "single flat offset"
	case FlatInterp:
		return "two flat offsets"
	case Hierarchical:
		return "two hierarchical offsets"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// ParseScheme converts a CLI spelling ("flat1", "flat2", "hier", …)
// into a Scheme.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "flat1", "single", "flat-single":
		return FlatSingle, nil
	case "flat2", "interp", "flat-interp":
		return FlatInterp, nil
	case "hier", "hierarchical":
		return Hierarchical, nil
	default:
		return 0, fmt.Errorf("vclock: unknown sync scheme %q (want flat1|flat2|hier)", s)
	}
}

// Correction maps one process's local time stamps onto the global
// master time base.
type Correction struct {
	Rank int
	Map  LinearMap
}

// BuildFlat constructs per-rank corrections from direct measurements
// against the global master. start holds the measurement taken at
// program start for every rank; end (ignored for FlatSingle) the one
// taken at program end. The master rank passes zero-offset
// measurements for itself.
func BuildFlat(scheme Scheme, start, end []Measurement) ([]Correction, error) {
	if scheme == Hierarchical {
		return nil, errors.New("vclock: BuildFlat cannot build hierarchical corrections; use BuildHierarchical")
	}
	if scheme == FlatInterp && len(end) != len(start) {
		return nil, fmt.Errorf("vclock: have %d start but %d end measurements", len(start), len(end))
	}
	out := make([]Correction, len(start))
	for r := range start {
		var e Measurement
		if scheme == FlatInterp {
			e = end[r]
		}
		m, err := FlatCorrection(scheme, start[r], e)
		if err != nil {
			return nil, err
		}
		out[r] = Correction{Rank: r, Map: m}
	}
	return out, nil
}

// HierarchicalInput bundles the measurements of the paper's
// hierarchical scheme for one process: the slave's offsets against its
// metahost-local master, and that local master's offsets against the
// metamaster. For a process on the metamaster's metahost the
// LocalMaster* fields are zero maps (identity composition); for a local
// master itself the Slave* fields are zero.
type HierarchicalInput struct {
	Rank int
	// Slave → local master, measured at start and end.
	SlaveStart, SlaveEnd Measurement
	// Local master → metamaster, measured at start and end. The local
	// master's measurement is shared by every slave on its metahost,
	// which is exactly why their relative offsets stay consistent (§4).
	MasterStart, MasterEnd Measurement
	// SharedNodeClock indicates the metahost provides hardware
	// synchronization across nodes; the slave step is then omitted (§4).
	SharedNodeClock bool
}

// BuildHierarchical composes, for every process, the slave→local-master
// interpolation with the local-master→metamaster interpolation,
// yielding the slave→metamaster correction.
func BuildHierarchical(inputs []HierarchicalInput) []Correction {
	out := make([]Correction, len(inputs))
	for i, in := range inputs {
		out[i] = Correction{Rank: in.Rank, Map: HierarchicalCorrection(in)}
	}
	return out
}

// ObserveCorrections records residual-drift statistics of a built
// correction set: the drift magnitude |B−1| of every per-rank
// correction map as a histogram, the largest one as a gauge, and the
// number of corrections built as a counter, all labeled by scheme. A
// large residual drift means the scheme had to stretch local time
// noticeably to meet the master time base — the effect Table 2's
// violation counts trace back to.
func ObserveCorrections(rec *obs.Recorder, scheme Scheme, corrs []Correction) {
	rec = obs.OrDefault(rec)
	s := scheme.String()
	hist := rec.Reg.Histogram("metascope_sync_residual_drift",
		"per-rank clock-correction drift magnitude |B-1|", obs.DriftBuckets, "scheme").With(s)
	maxG := rec.Reg.Gauge("metascope_sync_residual_drift_max",
		"largest per-rank clock-correction drift magnitude |B-1|", "scheme").With(s)
	built := rec.Reg.Counter("metascope_sync_corrections_total",
		"per-rank clock corrections built", "scheme").With(s)
	max := 0.0
	for _, c := range corrs {
		d := math.Abs(c.Map.B - 1)
		hist.Observe(d)
		if d > max {
			max = d
		}
	}
	maxG.Set(max)
	built.Add(float64(len(corrs)))
}

// Set holds the generated clocks of a metacomputer, one per SMP node
// (or one per metahost when the metahost advertises hardware clock
// synchronization).
type Set struct {
	mc     *topology.Metacomputer
	clocks map[nodeKey]*Clock
}

type nodeKey struct{ metahost, node int }

// Generate draws a clock for every node of every metahost from the
// engine's "clock" random stream: offsets uniform in ±MaxOffset, drifts
// uniform in ±MaxDrift. Metahosts with Synchronized clocks get a single
// shared clock.
func Generate(eng *sim.Engine, mc *topology.Metacomputer) *Set {
	s := &Set{mc: mc, clocks: make(map[nodeKey]*Clock)}
	for _, m := range mc.Metahosts {
		var shared *Clock
		for n := 0; n < m.Nodes; n++ {
			if m.Clock.Synchronized && shared != nil {
				s.clocks[nodeKey{m.ID, n}] = shared
				continue
			}
			c := &Clock{
				Offset:      eng.Uniform("clock", -m.Clock.MaxOffset, m.Clock.MaxOffset),
				Drift:       eng.Uniform("clock", -m.Clock.MaxDrift, m.Clock.MaxDrift),
				Granularity: m.Clock.Granularity,
			}
			s.clocks[nodeKey{m.ID, n}] = c
			if m.Clock.Synchronized {
				shared = c
			}
		}
	}
	return s
}

// ForLoc returns the clock serving the given location.
func (s *Set) ForLoc(loc topology.Loc) *Clock {
	c, ok := s.clocks[nodeKey{loc.Metahost, loc.Node}]
	if !ok {
		panic(fmt.Sprintf("vclock: no clock for location %v", loc))
	}
	return c
}

// MaxDivergence returns the largest absolute difference between any two
// node clocks' readings at global time t — the spread illustrated by
// the paper's Figure 1.
func (s *Set) MaxDivergence(t float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range s.clocks {
		r := c.Read(t)
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}
