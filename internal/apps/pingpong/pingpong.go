// Package pingpong measures one-way message latencies between process
// pairs of a metacomputer — the micro-benchmark behind Table 1, which
// reports the mean and standard deviation of the internal and external
// network latencies of the VIOLA testbed.
package pingpong

import (
	"fmt"

	"metascope/internal/mmpi"
	"metascope/internal/sim"
	"metascope/internal/stats"
	"metascope/internal/topology"
)

// Pair names two world ranks whose connecting link is measured.
type Pair struct {
	Label string
	A, B  int
}

// Result is the latency measurement for one pair.
type Result struct {
	Label   string
	Class   topology.LinkClass
	Samples int
	Mean    float64 // seconds, one-way (RTT/2)
	StdDev  float64
}

// String renders "label: mean ± sd µs (n samples)".
func (r Result) String() string {
	return fmt.Sprintf("%s (%s): %.2f us (sd %.3f us, n=%d)",
		r.Label, r.Class, r.Mean*1e6, r.StdDev*1e6, r.Samples)
}

// tag base for the benchmark's messages; each pair uses its own tag so
// concurrent pairs cannot interfere.
const tagBase = 7000

// Measure runs `rounds` ping-pong exchanges of `bytes`-sized messages
// for every pair concurrently and returns one-way latency statistics
// (RTT/2, the standard way latency tables such as Table 1 are
// produced). Ranks not participating in any pair exit immediately.
func Measure(eng *sim.Engine, place *topology.Placement, pairs []Pair, rounds, bytes int) ([]Result, error) {
	if rounds < 2 {
		return nil, fmt.Errorf("pingpong: need at least 2 rounds, got %d", rounds)
	}
	w := mmpi.NewWorld(eng, place)
	samples := make([][]float64, len(pairs))
	// A rank may participate in several pairs (rank 0 of FZJ appears in
	// both the external and the internal measurement of Table 1), so
	// every process walks the pair list in the same global order and
	// plays its role where it is involved. Distinct tags per pair keep
	// unrelated exchanges apart.
	err := w.Run(func(p *mmpi.Proc) {
		c := p.World()
		for pi, pair := range pairs {
			tag := tagBase + pi
			switch p.Rank() {
			case pair.A:
				for r := 0; r < rounds; r++ {
					t0 := p.Now()
					c.Send(pair.B, tag, bytes)
					c.Recv(pair.B, tag)
					samples[pi] = append(samples[pi], (p.Now()-t0)/2)
				}
			case pair.B:
				for r := 0; r < rounds; r++ {
					c.Recv(pair.A, tag)
					c.Send(pair.A, tag, bytes)
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(pairs))
	for i, p := range pairs {
		// Drop the first (warm-up) sample, as latency benchmarks do.
		s := samples[i][1:]
		out[i] = Result{
			Label:   p.Label,
			Class:   topology.Classify(place.Loc(p.A), place.Loc(p.B)),
			Samples: len(s),
			Mean:    stats.Mean(s),
			StdDev:  stats.StdDev(s),
		}
	}
	return out, nil
}

// Table1Pairs builds the three measurements of Table 1 on the VIOLA
// placement of Experiment 1: the external FZJ–FH-BRS link, the FZJ
// (XD1) internal network, and the FH-BRS internal network.
func Table1Pairs(place *topology.Placement) ([]Pair, error) {
	mc := place.Metacomputer()
	byName := func(name string) int {
		for _, m := range mc.Metahosts {
			if m.Name == name {
				return m.ID
			}
		}
		return -1
	}
	fzj, fhbrs := byName("FZJ"), byName("FH-BRS")
	if fzj < 0 || fhbrs < 0 {
		return nil, fmt.Errorf("pingpong: placement is not on the VIOLA topology")
	}
	firstTwoNodes := func(mh int) (int, int, error) {
		ranks := place.RanksOn(mh)
		if len(ranks) == 0 {
			return 0, 0, fmt.Errorf("pingpong: no ranks on metahost %d", mh)
		}
		first := ranks[0]
		for _, r := range ranks[1:] {
			if place.Loc(r).Node != place.Loc(first).Node {
				return first, r, nil
			}
		}
		return 0, 0, fmt.Errorf("pingpong: metahost %d has ranks on a single node only", mh)
	}
	fzjA, fzjB, err := firstTwoNodes(fzj)
	if err != nil {
		return nil, err
	}
	brsA, brsB, err := firstTwoNodes(fhbrs)
	if err != nil {
		return nil, err
	}
	return []Pair{
		{Label: "FZJ - FH-BRS (external network)", A: fzjA, B: brsA},
		{Label: "FZJ (internal network)", A: fzjA, B: fzjB},
		{Label: "FH-BRS (internal network)", A: brsA, B: brsB},
	}, nil
}
