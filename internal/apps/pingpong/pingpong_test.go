package pingpong

import (
	"math"
	"strings"
	"testing"

	"metascope/internal/sim"
	"metascope/internal/topology"
)

func violaPlace() (*topology.Metacomputer, *topology.Placement) {
	mc := topology.VIOLA()
	return mc, topology.ViolaExperiment1Placement(mc)
}

func TestTable1PairsSelection(t *testing.T) {
	_, place := violaPlace()
	pairs, err := Table1Pairs(place)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("%d pairs", len(pairs))
	}
	// Pair 0: external FZJ to FH-BRS.
	if c := topology.Classify(place.Loc(pairs[0].A), place.Loc(pairs[0].B)); c != topology.External {
		t.Errorf("pair 0 class %v", c)
	}
	// Pairs 1 and 2: internal, on FZJ and FH-BRS respectively.
	for i, wantMH := range map[int]int{1: 2, 2: 1} {
		la, lb := place.Loc(pairs[i].A), place.Loc(pairs[i].B)
		if topology.Classify(la, lb) != topology.Internal {
			t.Errorf("pair %d not internal", i)
		}
		if la.Metahost != wantMH || lb.Metahost != wantMH {
			t.Errorf("pair %d on metahost %d/%d, want %d", i, la.Metahost, lb.Metahost, wantMH)
		}
		if la.Node == lb.Node {
			t.Errorf("pair %d on the same node measures shared memory, not the network", i)
		}
	}
}

func TestTable1PairsRejectsForeignTopology(t *testing.T) {
	mc := topology.IBMPower()
	place := topology.IBMExperiment2Placement(mc)
	if _, err := Table1Pairs(place); err == nil {
		t.Fatalf("IBM placement accepted as VIOLA")
	}
}

func TestMeasureReproducesTable1Shape(t *testing.T) {
	_, place := violaPlace()
	pairs, err := Table1Pairs(place)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Measure(sim.NewEngine(42), place, pairs, 400, 64)
	if err != nil {
		t.Fatal(err)
	}
	ext, fzj, brs := rs[0], rs[1], rs[2]
	// Means within 20% of the configured (Table 1) values; the
	// measured value sits slightly above the raw latency because it
	// includes per-message overhead and transfer time.
	within := func(got, want, frac float64) bool {
		return math.Abs(got-want) <= frac*want
	}
	if !within(ext.Mean, 988e-6, 0.2) {
		t.Errorf("external mean %.1f us, want ~988", ext.Mean*1e6)
	}
	if !within(fzj.Mean, 21.5e-6, 0.4) {
		t.Errorf("FZJ internal mean %.1f us, want ~21.5", fzj.Mean*1e6)
	}
	if !within(brs.Mean, 44.4e-6, 0.3) {
		t.Errorf("FH-BRS internal mean %.1f us, want ~44.4", brs.Mean*1e6)
	}
	// The ordering that drives the whole paper: external latency two
	// orders of magnitude above internal.
	if ext.Mean < 10*brs.Mean || ext.Mean < 20*fzj.Mean {
		t.Errorf("latency hierarchy too flat: %v", rs)
	}
	// The standard deviation ordering of Table 1: the external link
	// jitters more in absolute terms than either internal network.
	if ext.StdDev < fzj.StdDev || ext.StdDev < brs.StdDev {
		t.Errorf("external sd %.3f us not the largest (fzj %.3f, brs %.3f)",
			ext.StdDev*1e6, fzj.StdDev*1e6, brs.StdDev*1e6)
	}
	if ext.Samples != 399 { // one warm-up dropped
		t.Errorf("samples = %d", ext.Samples)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	_, place := violaPlace()
	pairs, _ := Table1Pairs(place)
	a, err := Measure(sim.NewEngine(7), place, pairs, 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(sim.NewEngine(7), place, pairs, 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Mean != b[i].Mean || a[i].StdDev != b[i].StdDev {
			t.Fatalf("pair %d not deterministic", i)
		}
	}
}

func TestMeasureValidation(t *testing.T) {
	_, place := violaPlace()
	pairs, _ := Table1Pairs(place)
	if _, err := Measure(sim.NewEngine(1), place, pairs, 1, 64); err == nil {
		t.Fatalf("single round accepted")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Label: "x", Class: topology.External, Samples: 10, Mean: 1e-3, StdDev: 1e-6}
	s := r.String()
	if !strings.Contains(s, "x") || !strings.Contains(s, "external") || !strings.Contains(s, "1000.00 us") {
		t.Errorf("String() = %q", s)
	}
}
