package clockbench

import (
	"testing"

	"metascope"
	"metascope/internal/measure"
	"metascope/internal/trace"
	"metascope/internal/vclock"
)

func runBench(t *testing.T, seed int64, p Params) ([]*trace.Trace, *metascope.Experiment) {
	t.Helper()
	topo := metascope.VIOLA()
	place := metascope.ViolaExperiment1Placement(topo)
	e := metascope.NewExperiment("clockbench-test", topo, place, seed)
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(func(m *measure.M) { Body(m, p) }); err != nil {
		t.Fatal(err)
	}
	traces, err := e.Traces()
	if err != nil {
		t.Fatal(err)
	}
	return traces, e
}

func TestBodyProducesExpectedMessageCount(t *testing.T) {
	p := Params{Rounds: 40, Bytes: 64, Gap: 0.01}
	traces, _ := runBench(t, 1, p)
	if len(traces) != 32 {
		t.Fatalf("%d traces", len(traces))
	}
	for _, tr := range traces {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		sends := tr.CountKind(trace.KindSend)
		recvs := tr.CountKind(trace.KindRecv)
		if sends != p.Rounds || recvs != p.Rounds {
			t.Fatalf("rank %d: %d sends / %d recvs, want %d each",
				tr.Loc.Rank, sends, recvs, p.Rounds)
		}
	}
	if p.Messages(32) != 40*32 {
		t.Fatalf("Messages() = %d", p.Messages(32))
	}
}

func TestVaryingPairsCoverManyPartners(t *testing.T) {
	// Over n-1 rounds every process must have sent to n-1 distinct
	// partners ("varying pairs of processes", §5).
	p := Params{Rounds: 31, Bytes: 64, Gap: 0}
	traces, _ := runBench(t, 2, p)
	tr := traces[0]
	partners := map[int32]bool{}
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindSend {
			partners[ev.Peer] = true
		}
	}
	if len(partners) != 31 {
		t.Fatalf("rank 0 sent to %d distinct partners, want 31", len(partners))
	}
}

func TestViolationOrderingAcrossSchemes(t *testing.T) {
	// The core claim of Table 2, as an integration test on a reduced
	// workload: flat-single ≥ flat-interp > hierarchical == 0.
	traces, e := runBench(t, 3, Quick())
	_ = traces
	counts := map[vclock.Scheme]int{}
	for _, s := range []vclock.Scheme{vclock.FlatSingle, vclock.FlatInterp, vclock.Hierarchical} {
		res, err := e.Analyze(s)
		if err != nil {
			t.Fatal(err)
		}
		counts[s] = res.Violations
	}
	if counts[vclock.Hierarchical] != 0 {
		t.Errorf("hierarchical violations = %d, want 0 (Table 2)", counts[vclock.Hierarchical])
	}
	if counts[vclock.FlatInterp] <= counts[vclock.Hierarchical] {
		t.Errorf("flat-interp (%d) not worse than hierarchical (%d)",
			counts[vclock.FlatInterp], counts[vclock.Hierarchical])
	}
	if counts[vclock.FlatSingle] <= counts[vclock.FlatInterp] {
		t.Errorf("flat-single (%d) not worse than flat-interp (%d)",
			counts[vclock.FlatSingle], counts[vclock.FlatInterp])
	}
}

func TestDefaultAndQuickParams(t *testing.T) {
	d, q := Default(), Quick()
	if d.Rounds <= q.Rounds {
		t.Errorf("Default (%d rounds) not larger than Quick (%d)", d.Rounds, q.Rounds)
	}
	if d.Bytes <= 0 || d.Gap <= 0 {
		t.Errorf("bad defaults %+v", d)
	}
}
