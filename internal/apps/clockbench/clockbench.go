// Package clockbench implements the synchronization-validation
// workload of §5: a benchmark "specifically designed to exchange a
// large number of short messages between varying pairs of processes",
// producing send/receive event pairs that are chronologically close —
// the hardest case for time-stamp synchronization and the input of
// Table 2's clock-condition-violation counts.
package clockbench

import (
	"metascope/internal/measure"
)

// Params configures the benchmark.
type Params struct {
	// Rounds is the number of exchange rounds; each round every
	// process sends one message and receives one message.
	Rounds int
	// Bytes is the (small) message size.
	Bytes int
	// Gap is the mean per-round compute pause in seconds; it stretches
	// the run so clock drift accumulates (the effect the FlatSingle
	// scheme cannot compensate). Individual pauses are jittered ±50 %.
	Gap float64
}

// Default returns the parameters used for the Table 2 reproduction:
// 1200 rounds of 64-byte messages (38400 messages on 32 processes)
// spread over roughly two minutes of virtual time — long enough for
// clock drift to overwhelm the single-offset scheme.
func Default() Params {
	return Params{Rounds: 1200, Bytes: 64, Gap: 0.1}
}

// Quick returns a scaled-down variant for fast tests.
func Quick() Params {
	return Params{Rounds: 150, Bytes: 64, Gap: 0.1}
}

// Messages returns the total number of point-to-point messages the
// benchmark generates on n processes.
func (p Params) Messages(n int) int { return p.Rounds * n }

const tag = 4100

// Body is the per-process benchmark, run under measurement. In round
// r every process i exchanges with partners at distance s = (r mod
// n−1) + 1 around the ring: it sends to (i+s) mod n and receives from
// (i−s) mod n, so over n−1 rounds every ordered process pair
// communicates — "varying pairs" in the paper's words.
func Body(m *measure.M, p Params) {
	c := m.World()
	n := c.Size()
	rank := c.Rank()
	eng := m.Proc().Engine()

	m.Enter("main")
	m.Enter("exchange")
	for r := 0; r < p.Rounds; r++ {
		s := 1
		if n > 1 {
			s = r%(n-1) + 1
		}
		dst := (rank + s) % n
		src := (rank - s + n) % n
		// Jittered think time desynchronizes the processes slightly, so
		// matching sends and receives stay chronologically close but
		// not artificially simultaneous.
		if p.Gap > 0 {
			m.Elapse(eng.Uniform("clockbench:gap", 0.5*p.Gap, 1.5*p.Gap))
		}
		c.Sendrecv(dst, tag, p.Bytes, src, tag)
	}
	m.Exit()
	m.Exit()
}
