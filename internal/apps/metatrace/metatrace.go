// Package metatrace is a synthetic reconstruction of the MetaTrace
// multi-physics application analyzed in §5: a coupled simulation of
// solute transport in heterogeneous soil-aquifer systems consisting of
// two submodels.
//
// Trace computes the velocity field of water flow with a parallel
// conjugate-gradient solver over a three-dimensional domain
// decomposition with nearest-neighbour communication (functions
// cgiteration and finelassdt). Partrace tracks individual particles in
// the velocity field. Every coupling step Trace sends the velocity
// field — 200 MB in parallel chunks — to Partrace (printtolink /
// ReadVelFieldFromTrace, synchronized by a barrier over the global
// communicator), and Partrace returns currently unused steering
// information.
//
// The compute kernels use per-metahost speed factors, so running the
// same binary on the heterogeneous VIOLA placement (Experiment 1 of
// Table 3) produces the paper's wait states: Grid Late Sender inside
// cgiteration concentrated on the faster FH-BRS cluster, and Grid Wait
// at Barrier inside ReadVelFieldFromTrace on the Cray XD1. On the
// homogeneous IBM placement (Experiment 2) both shrink while the
// steering Late Sender grows.
package metatrace

import (
	"fmt"

	"metascope/internal/measure"
	"metascope/internal/mmpi"
	"metascope/internal/topology"
)

// Message tags.
const (
	tagHalo  = 5001
	tagField = 5002
	tagSteer = 5003
)

// Params configures the synthetic MetaTrace run. Work values are in
// abstract work units; a unit takes one second on a speed-1.0 machine.
type Params struct {
	Steps   int // coupling steps (velocity-field transfers)
	CGIters int // CG iterations per coupling step

	CGWork    float64 // per-iteration CG compute per Trace rank
	FineWork  float64 // finelassdt compute per step per Trace rank
	PartWork  float64 // particle tracking per step per Partrace rank
	SteerWork float64 // steering preparation per step per Partrace rank
	FieldWork float64 // velocity-field post-processing per step per Trace rank

	HaloBytes  int // halo exchange message size
	FieldBytes int // total velocity field size per step (split over pairs)
	SteerBytes int // steering message size
	DotBytes   int // CG dot-product allreduce size

	// Detail is the instrumentation granularity: how many inner
	// compute-block regions each solver kernel records per iteration.
	// 1 mimics coarse manual instrumentation; real preprocessor-
	// instrumented codes (the paper's MetaTrace was instrumented by a
	// directive-translating preprocessor) sit closer to 8–32, which
	// makes trace files much larger than the analyzer's replay traffic.
	Detail int

	NT        int // number of Trace ranks (the first NT world ranks)
	TraceComm int // predefined communicator id for Trace
	PartComm  int // predefined communicator id for Partrace
}

// Default returns the calibrated parameters for a 32-process run
// (16 Trace + 16 Partrace): coupling steps of 10–15 virtual seconds
// with a 200 MB field transfer each, as described in §5.
func Default(nTrace int) Params {
	return Params{
		Steps:      10,
		CGIters:    30,
		CGWork:     0.24,
		FineWork:   3.0,
		PartWork:   12.0,
		SteerWork:  1.0,
		FieldWork:  0.5,
		HaloBytes:  16 << 10,
		FieldBytes: 200 << 20,
		SteerBytes: 4 << 10,
		DotBytes:   8,
		Detail:     1,
		NT:         nTrace,
	}
}

// Setup registers the Trace and Partrace communicators on a world that
// has not started yet and returns the parameterization. The world must
// have 2·nTrace ranks: the first half runs Trace, the second Partrace
// (the paper assigned the same number of processors to both).
func Setup(w *mmpi.World, p Params) (Params, error) {
	if p.NT <= 0 || w.N() != 2*p.NT {
		return p, fmt.Errorf("metatrace: world has %d ranks, want 2x%d", w.N(), p.NT)
	}
	traceRanks := make([]int, p.NT)
	partRanks := make([]int, p.NT)
	for i := 0; i < p.NT; i++ {
		traceRanks[i] = i
		partRanks[i] = p.NT + i
	}
	p.TraceComm = w.PredefComm(traceRanks)
	p.PartComm = w.PredefComm(partRanks)
	return p, nil
}

// Body is the per-process entry point, run under measurement.
func Body(m *measure.M, p Params) {
	if m.Rank() < p.NT {
		traceBody(m, p)
	} else {
		partraceBody(m, p)
	}
}

// traceBody runs the flow-field submodel on ranks 0..NT-1.
func traceBody(m *measure.M, p Params) {
	wc := m.World()
	tc := m.Comm(p.TraceComm)
	myRank := tc.Rank()
	partner := p.NT + myRank // corresponding Partrace world rank
	nbs := Neighbors(Dims3(p.NT), myRank)
	chunk := p.FieldBytes / p.NT

	m.Enter("main")
	for step := 0; step < p.Steps; step++ {
		// CG solve with nearest-neighbour halo exchange and a dot
		// product per iteration. The halo partners that straddle the
		// FH-BRS/CAESAR boundary produce the Grid Late Sender of
		// Figure 6(a).
		m.Enter("cgiteration")
		for it := 0; it < p.CGIters; it++ {
			// Function-level instrumentation as the paper's
			// preprocessor would emit: the solver's compute kernels
			// are regions of their own.
			detail := p.Detail
			if detail < 1 {
				detail = 1
			}
			m.InRegion("sparsematvec", func() {
				for bl := 0; bl < detail; bl++ {
					m.InRegion("stencilblock", func() {
						m.Compute(topology.KernelTraceCG, 0.6*p.CGWork/float64(detail))
					})
				}
			})
			m.InRegion("applyprecond", func() {
				for bl := 0; bl < detail; bl++ {
					m.InRegion("smoothblock", func() {
						m.Compute(topology.KernelTraceCG, 0.4*p.CGWork/float64(detail))
					})
				}
			})
			m.InRegion("exchangehalo", func() {
				for _, nb := range nbs {
					tc.Sendrecv(nb, tagHalo, p.HaloBytes, nb, tagHalo)
				}
			})
			m.InRegion("dotproduct", func() {
				tc.Allreduce(p.DotBytes)
			})
		}
		m.Exit()

		// Pure computation; the paper observed this function running
		// about twice as fast on FH-BRS as on CAESAR.
		m.Enter("finelassdt")
		m.Compute(topology.KernelTraceCG, p.FineWork)
		m.Exit()

		// Hand the velocity field to Partrace: a global barrier, then
		// a parallel unidirectional transfer (12.5 MB per pair).
		m.Enter("printtolink")
		wc.Barrier()
		wc.Send(partner, tagField, chunk)
		m.Exit()

		// Post-process the field before looking at steering input.
		m.Enter("applyfield")
		m.Compute(topology.KernelTraceCG, p.FieldWork)
		m.Exit()

		// Receive the (currently unused) steering information; on the
		// homogeneous system this is where Trace waits for Partrace.
		m.Enter("getsteering")
		wc.Recv(partner, tagSteer)
		m.Exit()
	}
	m.Exit()
}

// partraceBody runs the particle-tracking submodel on ranks NT..2NT-1.
func partraceBody(m *measure.M, p Params) {
	wc := m.World()
	pc := m.Comm(p.PartComm)
	partner := wc.Rank() - p.NT // corresponding Trace world rank

	m.Enter("main")
	for step := 0; step < p.Steps; step++ {
		m.Enter("tracking")
		for batch := 0; batch < 16; batch++ {
			m.InRegion("advectparticles", func() {
				m.Compute(topology.KernelPartrace, p.PartWork/16)
			})
		}
		m.Exit()

		// Particle load statistics within Partrace.
		m.Enter("balanceparticles")
		pc.Allreduce(p.DotBytes)
		m.Exit()

		// Synchronize with Trace and receive the velocity field. On
		// the heterogeneous system Partrace reaches this barrier long
		// before Trace — the Grid Wait at Barrier of Figure 6(b).
		m.Enter("ReadVelFieldFromTrace")
		wc.Barrier()
		wc.Recv(partner, tagField)
		m.Exit()

		// Send steering information back to Trace.
		m.Enter("WriteSteeringToTrace")
		m.Compute(topology.KernelPartrace, p.SteerWork)
		wc.Send(partner, tagSteer, p.SteerBytes)
		m.Exit()
	}
	m.Exit()
}
