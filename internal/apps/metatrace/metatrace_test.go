package metatrace

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDims3KnownSizes(t *testing.T) {
	cases := map[int]Dims{
		1:  {1, 1, 1},
		2:  {2, 1, 1},
		4:  {2, 2, 1},
		8:  {2, 2, 2},
		16: {4, 2, 2}, // the paper's 16-process Trace grid
		27: {3, 3, 3},
		64: {4, 4, 4},
		12: {3, 2, 2},
	}
	for n, want := range cases {
		got := Dims3(n)
		if got != want {
			t.Errorf("Dims3(%d) = %v, want %v", n, got, want)
		}
	}
}

// Property: Dims3 always factors exactly with X ≥ Y ≥ Z ≥ 1.
func TestDims3Property(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw)%512 + 1
		d := Dims3(n)
		return d.Size() == n && d.X >= d.Y && d.Y >= d.Z && d.Z >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 512}); err != nil {
		t.Fatal(err)
	}
}

func TestCoordRankRoundTrip(t *testing.T) {
	d := Dims3(16)
	for r := 0; r < 16; r++ {
		x, y, z := Coord(d, r)
		if RankOf(d, x, y, z) != r {
			t.Fatalf("round trip broken at rank %d", r)
		}
		if x < 0 || x >= d.X || y < 0 || y >= d.Y || z < 0 || z >= d.Z {
			t.Fatalf("coord out of range at rank %d", r)
		}
	}
}

func TestNeighborsSymmetricAndBounded(t *testing.T) {
	d := Dims3(16)
	for r := 0; r < 16; r++ {
		nbs := Neighbors(d, r)
		if len(nbs) < 3 || len(nbs) > 6 {
			t.Errorf("rank %d has %d neighbours", r, len(nbs))
		}
		for _, nb := range nbs {
			if nb == r {
				t.Errorf("rank %d is its own neighbour", r)
			}
			// Symmetry: r must appear in nb's list.
			found := false
			for _, back := range Neighbors(d, nb) {
				if back == r {
					found = true
				}
			}
			if !found {
				t.Errorf("neighbour relation not symmetric: %d -> %d", r, nb)
			}
		}
	}
}

func TestNeighborsCrossZPlane(t *testing.T) {
	// In the 4x2x2 grid, ranks 0-7 (z=0) and 8-15 (z=1) pair up
	// exactly across the z boundary — this is the FH-BRS/CAESAR
	// boundary that produces the Grid Late Sender in Experiment 1.
	d := Dims3(16)
	for r := 0; r < 8; r++ {
		nbs := Neighbors(d, r)
		hasZPartner := false
		for _, nb := range nbs {
			if nb == r+8 {
				hasZPartner = true
			}
		}
		if !hasZPartner {
			t.Errorf("rank %d lacks its z-partner %d (neighbours %v)", r, r+8, nbs)
		}
	}
}

func TestNeighborsDeterministicOrder(t *testing.T) {
	d := Dims3(16)
	a := Neighbors(d, 5)
	b := Neighbors(d, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("neighbour order unstable")
	}
	if sort.IntsAreSorted(a) {
		// not required — just ensure the order is the documented
		// (-x,+x,-y,+y,-z,+z) sequence for an interior-ish rank
		_ = a
	}
	// rank 5 = (1,1,0): -x=4, +x=6, -y=1, +z=13.
	want := []int{4, 6, 1, 13}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("Neighbors(5) = %v, want %v", a, want)
	}
}

func TestDefaultParamsSanity(t *testing.T) {
	p := Default(16)
	if p.NT != 16 || p.Steps <= 0 || p.CGIters <= 0 {
		t.Fatalf("bad defaults %+v", p)
	}
	if p.FieldBytes != 200<<20 {
		t.Errorf("velocity field %d bytes, want 200 MB (paper §5)", p.FieldBytes)
	}
	// The per-pair chunk must exceed the eager limit so the transfer is
	// a rendezvous, as a 12.5 MB message would be.
	if p.FieldBytes/p.NT <= 64<<10 {
		t.Errorf("field chunk too small to exercise rendezvous")
	}
	if p.HaloBytes >= 64<<10 {
		t.Errorf("halo messages should be eager-sized")
	}
}
