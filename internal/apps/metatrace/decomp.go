package metatrace

// Three-dimensional domain decomposition with nearest-neighbour
// connectivity, matching Trace's solver structure ("Trace applies a
// three-dimensional domain decomposition with nearest-neighbor
// communication", §5).

// Dims holds the process-grid extents.
type Dims struct{ X, Y, Z int }

// Size returns X·Y·Z.
func (d Dims) Size() int { return d.X * d.Y * d.Z }

// Dims3 factors n into three factors as close to each other as
// possible, preferring larger extents in X (the contiguous dimension).
// For 16 it yields 4×2×2, the grid used by the 16-process Trace runs.
func Dims3(n int) Dims {
	best := Dims{n, 1, 1}
	bestScore := score(best)
	for z := 1; z*z*z <= n; z++ {
		if n%z != 0 {
			continue
		}
		rest := n / z
		for y := z; y*y <= rest; y++ {
			if rest%y != 0 {
				continue
			}
			d := Dims{X: rest / y, Y: y, Z: z}
			if s := score(d); s < bestScore {
				best, bestScore = d, s
			}
		}
	}
	return best
}

// score measures how far from cubic a decomposition is (surface area
// of the unit process grid; smaller is better balanced).
func score(d Dims) int {
	return d.X*d.Y + d.Y*d.Z + d.X*d.Z
}

// Coord returns the grid coordinates of a rank (x fastest).
func Coord(d Dims, rank int) (x, y, z int) {
	x = rank % d.X
	y = (rank / d.X) % d.Y
	z = rank / (d.X * d.Y)
	return
}

// RankOf returns the rank at grid coordinates (x, y, z).
func RankOf(d Dims, x, y, z int) int {
	return x + d.X*(y+d.Y*z)
}

// Neighbors returns the ranks of the up to six face neighbours of a
// rank in deterministic order (−x, +x, −y, +y, −z, +z; boundaries are
// non-periodic and skipped).
func Neighbors(d Dims, rank int) []int {
	x, y, z := Coord(d, rank)
	var out []int
	if x > 0 {
		out = append(out, RankOf(d, x-1, y, z))
	}
	if x < d.X-1 {
		out = append(out, RankOf(d, x+1, y, z))
	}
	if y > 0 {
		out = append(out, RankOf(d, x, y-1, z))
	}
	if y < d.Y-1 {
		out = append(out, RankOf(d, x, y+1, z))
	}
	if z > 0 {
		out = append(out, RankOf(d, x, y, z-1))
	}
	if z < d.Z-1 {
		out = append(out, RankOf(d, x, y, z+1))
	}
	return out
}
