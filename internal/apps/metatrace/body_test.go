package metatrace

import (
	"testing"

	"metascope/internal/archive"
	"metascope/internal/measure"
	"metascope/internal/mmpi"
	"metascope/internal/sim"
	"metascope/internal/topology"
	"metascope/internal/trace"
	"metascope/internal/vclock"
)

// runSmall executes the full MetaTrace body on a reduced world (4
// Trace + 4 Partrace ranks over two metahosts) and returns the traces.
func runSmall(t *testing.T, p Params) []*trace.Trace {
	t.Helper()
	mc := topology.VIOLA()
	place := topology.NewPlacement(mc)
	place.MustPlace(1, 0, 1, 4) // Trace on FH-BRS
	place.MustPlace(2, 0, 2, 2) // Partrace on FZJ
	eng := sim.NewEngine(3)
	world := mmpi.NewWorld(eng, place)
	p.NT = 4
	p, err := Setup(world, p)
	if err != nil {
		t.Fatal(err)
	}
	mounts := archive.NewMounts()
	for _, m := range mc.Metahosts {
		mounts.Mount(m.ID, archive.NewMemFS(m.Name))
	}
	cfg := measure.Config{
		ArchiveDir: "epik_mt",
		Mounts:     mounts,
		Clocks:     vclock.Generate(eng, mc),
		PingPongs:  4,
	}
	if _, err := measure.Run(world, cfg, func(m *measure.M) { Body(m, p) }); err != nil {
		t.Fatal(err)
	}
	var traces []*trace.Trace
	for rank := 0; rank < 8; rank++ {
		fs := mounts.For(place.Loc(rank).Metahost)
		f, err := fs.Open(archive.TraceFile("epik_mt", rank))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.Decode(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	return traces
}

func smallParams() Params {
	p := Default(4)
	p.Steps = 2
	p.CGIters = 5
	p.CGWork = 0.01
	p.FineWork = 0.05
	p.PartWork = 0.2
	p.SteerWork = 0.02
	p.FieldWork = 0.01
	p.FieldBytes = 8 << 20
	return p
}

func TestBodyProducesStructurallyValidTraces(t *testing.T) {
	traces := runSmall(t, smallParams())
	for _, tr := range traces {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Trace ranks visit the solver functions; Partrace ranks the
	// tracking functions; never vice versa.
	for rank, tr := range traces {
		s := tr.Stats()
		isTrace := rank < 4
		if isTrace {
			if s.RegionVisits["cgiteration"] != 2 || s.RegionVisits["finelassdt"] != 2 {
				t.Errorf("rank %d: solver visits %v", rank, s.RegionVisits)
			}
			if s.RegionVisits["tracking"] != 0 {
				t.Errorf("rank %d: Trace rank ran Partrace code", rank)
			}
		} else {
			if s.RegionVisits["ReadVelFieldFromTrace"] != 2 || s.RegionVisits["tracking"] != 2 {
				t.Errorf("rank %d: tracking visits %v", rank, s.RegionVisits)
			}
			if s.RegionVisits["cgiteration"] != 0 {
				t.Errorf("rank %d: Partrace rank ran Trace code", rank)
			}
		}
	}
}

func TestBodyFieldTransferVolume(t *testing.T) {
	p := smallParams()
	traces := runSmall(t, p)
	// Every Trace rank sends its field chunk once per step.
	chunk := int64(p.FieldBytes / 4)
	for rank := 0; rank < 4; rank++ {
		s := traces[rank].Stats()
		wantMin := chunk * int64(p.Steps)
		if s.BytesSent < wantMin {
			t.Errorf("rank %d sent %d bytes, want at least %d (field chunks)", rank, s.BytesSent, wantMin)
		}
	}
	// Every Partrace rank receives them.
	for rank := 4; rank < 8; rank++ {
		s := traces[rank].Stats()
		if s.BytesRecv < chunk*int64(p.Steps) {
			t.Errorf("rank %d received %d bytes", rank, s.BytesRecv)
		}
	}
}

func TestBodyDetailControlsEventCount(t *testing.T) {
	coarse := runSmall(t, smallParams())
	fine := smallParams()
	fine.Detail = 8
	detailed := runSmall(t, fine)
	for rank := 0; rank < 4; rank++ { // only Trace ranks have detail regions
		c, d := len(coarse[rank].Events), len(detailed[rank].Events)
		if d <= c {
			t.Errorf("rank %d: detail=8 produced %d events vs %d at detail=1", rank, d, c)
		}
	}
}

func TestSetupValidatesWorldSize(t *testing.T) {
	mc := topology.VIOLA()
	place := topology.NewPlacement(mc)
	place.MustPlace(2, 0, 3, 2) // 6 ranks: not 2×NT for NT=4
	world := mmpi.NewWorld(sim.NewEngine(1), place)
	if _, err := Setup(world, Default(4)); err == nil {
		t.Fatal("mismatched world size accepted")
	}
}
